//! The progress monitor / scheduling extension (§3, Figures 2, 5, 6).
//!
//! [`RdaExtension`] is the component the simulation driver (and the
//! examples) talk to. It owns the registry, resource monitor, waitlist,
//! and fast-path cache, and implements the two workflows of Figures 5
//! and 6:
//!
//! * **`pp_begin`** — allocate a period id, evaluate the scheduling
//!   predicate (Algorithm 1), and either account the demand and let the
//!   process run, or waitlist it (the caller pauses the process's
//!   threads on the OS wait queue).
//! * **`pp_end`** — remove the period from the registry, release its
//!   demand from the resource monitor, then walk the waitlist FIFO
//!   admitting every period that now fits (the caller wakes those
//!   processes).
//!
//! Untracked processes are invisible here: *"Our system ignores
//! processes that have not provided progress period information, and
//! schedules them directly on the operating system."*
//!
//! # Fault model
//!
//! The paper assumes cooperative applications. This implementation does
//! not, and survives three classes of misbehaviour:
//!
//! * **Protocol violations** — an end for a period that was never begun,
//!   already ended, or is still waitlisted is rejected with a typed
//!   [`RdaError`] (counted in [`RdaStats::rejected_ends`]) instead of
//!   corrupting the load table or panicking.
//! * **Lying demands** — the demand auditor
//!   ([`crate::config::DemandAudit`]) clamps or rejects declarations
//!   larger than the resource itself, so one liar cannot hold more than
//!   one capacity's worth of the books ([`RdaStats::clamped`]).
//! * **Dying processes** — [`RdaExtension::process_exit`] reclaims every
//!   open period of an exiting process — admitted demand is released,
//!   waitlisted entries are cancelled — and re-walks the waitlist
//!   ([`RdaStats::reclaimed`]).
//!
//! Independently, **waitlist aging** (when
//! [`crate::config::RdaConfig::waitlist_timeout_cycles`] is set) bounds
//! worst-case wait by construction: a period that has waited past the
//! timeout is force-admitted under the monitor's degraded overflow
//! bucket ([`RdaStats::aged_admissions`]), which the predicate does not
//! see — so degraded admissions can never wedge the nominal books shut.

use crate::api::{PpDemand, PpId, Resource, SiteId};
use crate::config::{DemandAudit, RdaConfig, ShedPolicy};
use crate::error::{InvariantKind, RdaError};
use crate::fastpath::FastPathCache;
use crate::monitor::ResourceMonitor;
use crate::policy::PolicyKind;
use crate::predicate::{self, Decision};
use crate::registry::PpRegistry;
use crate::snapshot::{PpSnap, Snapshot, WaitSnap};
use crate::waitlist::{WaitEntry, Waitlist};
use rda_sched::ProcessId;
use rda_simcore::SimTime;
use rda_trace::{EventKind, RejectKind, TraceEvent, TraceResource, TraceSink};

/// Activity counters of the extension.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RdaStats {
    /// `pp_begin` calls processed.
    pub begins: u64,
    /// `pp_end` calls processed (including rejected ones).
    pub ends: u64,
    /// Periods admitted immediately at `pp_begin`.
    pub admitted: u64,
    /// Periods paused (waitlisted) at `pp_begin`.
    pub paused: u64,
    /// Periods later admitted from the waitlist by the predicate.
    pub resumed: u64,
    /// `pp_begin` calls served by the fast path.
    pub fast_begins: u64,
    /// `pp_end` calls served by the fast path.
    pub fast_ends: u64,
    /// Largest waitlist length observed.
    pub max_waitlist: u64,
    /// Oversized demands admitted by the deadlock guard.
    pub oversized_admits: u64,
    /// Periods reclaimed by [`RdaExtension::process_exit`] (open or
    /// waitlisted periods of a dying process).
    pub reclaimed: u64,
    /// Declared demands the auditor clamped or rejected.
    pub clamped: u64,
    /// Periods force-admitted by waitlist aging into the overflow
    /// bucket.
    pub aged_admissions: u64,
    /// `pp_end` calls rejected with a typed error (unknown id, double
    /// end, or end of a waitlisted period).
    pub rejected_ends: u64,
    /// Arrivals shed by overload control: bounded-gate drops (either
    /// end of the queue), breaker sheds, and degraded
    /// direct-to-overflow admissions.
    pub shed: u64,
    /// Waitlisted periods expired past their configured deadline.
    pub expired: u64,
    /// Client-side retries recorded via [`RdaExtension::note_retry`].
    pub retried: u64,
    /// Times the saturation circuit breaker tripped open.
    pub breaker_trips: u64,
    /// Operations failed with [`RdaError::RegistryDesync`] or a
    /// rolled-back waitlist push — nonzero only if the extension itself
    /// has a bug. Excluded from the snapshot digest so existing golden
    /// digests stay valid.
    pub desyncs: u64,
}

/// One period request inside a [`RdaExtension::pp_begin_batch`] call —
/// the arguments of a single [`RdaExtension::pp_begin`], minus the
/// shared timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeginRequest {
    /// The process opening the period.
    pub process: ProcessId,
    /// The static begin site.
    pub site: SiteId,
    /// The declared demand.
    pub demand: PpDemand,
}

/// Outcome of a `pp_begin` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BeginOutcome {
    /// The policy is [`PolicyKind::DefaultOnly`]: the call is not
    /// tracked at all (models an unmodified application on the stock
    /// scheduler — zero overhead).
    Bypass,
    /// Admitted: the process keeps running. `fast` reports whether the
    /// memoised fast path served the call (cost accounting).
    Run {
        /// The allocated period id.
        pp: PpId,
        /// Whether the fast path served the call.
        fast: bool,
    },
    /// Denied: the caller must pause the process until the id is
    /// returned by a later [`RdaExtension::pp_end`].
    Pause {
        /// The allocated (waitlisted) period id.
        pp: PpId,
        /// Under [`ShedPolicy::RejectOldest`], the longest-queued
        /// waiter the gate evicted to make room for this arrival. The
        /// victim's period is already completed; the caller must fail
        /// its request. `None` when nothing was evicted.
        shed: Option<PpId>,
    },
}

/// Outcome of an aging tick ([`RdaExtension::age_waitlist`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AgeOutcome {
    /// Waitlisted periods admitted (nominally or by aging); the caller
    /// must wake their processes.
    pub resumed: Vec<(PpId, ProcessId)>,
    /// Waitlisted periods expired past their deadline with
    /// [`RdaError::DeadlineExceeded`] semantics; their periods are
    /// already completed and the caller must fail their requests.
    /// Always empty unless [`crate::config::OverloadConfig::deadline_cycles`]
    /// is set.
    pub expired: Vec<(PpId, ProcessId)>,
}

/// Outcome of a `pp_end` call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndOutcome {
    /// Whether the fast path served the call.
    pub fast: bool,
    /// Waitlisted periods admitted by this completion; the caller must
    /// wake their processes.
    pub resumed: Vec<(PpId, ProcessId)>,
}

/// The RDA scheduling extension.
#[derive(Debug, Clone)]
pub struct RdaExtension {
    cfg: RdaConfig,
    registry: PpRegistry,
    monitor: ResourceMonitor,
    waitlist: Waitlist,
    fastpath: FastPathCache,
    stats: RdaStats,
    /// Optional observability sink. `None` (the default) is zero-cost:
    /// every emission site is one branch on the option. Events never
    /// feed back into scheduling decisions, so run digests are
    /// byte-identical with tracing on or off.
    sink: Option<TraceSink>,
    /// Saturation-breaker state per resource (order of
    /// [`Resource::ALL`]): open flag plus the consecutive-tick
    /// hysteresis counters. All zero unless a breaker is configured.
    breaker_open: [bool; 2],
    breaker_above: [u32; 2],
    breaker_below: [u32; 2],
    /// Bumped by every call that can mutate the books (registry,
    /// monitor, waitlist) — [`Self::pp_begin`], [`Self::pp_end`],
    /// [`Self::process_exit`], [`Self::age_waitlist`]. Callers running
    /// a per-step paranoid [`Self::check_invariants`] sweep can skip
    /// re-checking while the epoch is unchanged: the check is a pure
    /// function of the books, so an unchanged epoch implies an
    /// unchanged verdict.
    books_epoch: u64,
}

impl RdaExtension {
    /// Build an extension with the given configuration.
    pub fn new(cfg: RdaConfig) -> Self {
        RdaExtension {
            monitor: ResourceMonitor::new(cfg.llc_capacity, cfg.membw_capacity),
            registry: PpRegistry::new(),
            waitlist: Waitlist::new(),
            fastpath: FastPathCache::new(),
            stats: RdaStats::default(),
            sink: None,
            breaker_open: [false; 2],
            breaker_above: [0; 2],
            breaker_below: [0; 2],
            books_epoch: 0,
            cfg,
        }
    }

    /// Attach a trace sink; subsequent calls emit events into it.
    pub fn install_trace(&mut self, sink: TraceSink) {
        self.sink = Some(sink);
    }

    /// The attached trace sink, if any.
    pub fn trace(&self) -> Option<&TraceSink> {
        self.sink.as_ref()
    }

    /// Mutable access to the attached trace sink (the simulation uses
    /// this to record occupancy samples alongside the event stream).
    pub fn trace_mut(&mut self) -> Option<&mut TraceSink> {
        self.sink.as_mut()
    }

    /// Detach the trace sink, e.g. to freeze it into a report at end of
    /// run.
    pub fn take_trace(&mut self) -> Option<TraceSink> {
        self.sink.take()
    }

    fn trace_resource(r: Resource) -> TraceResource {
        match r {
            Resource::Llc => TraceResource::Llc,
            Resource::MemBandwidth => TraceResource::MemBandwidth,
        }
    }

    #[inline]
    fn emit(&mut self, ev: TraceEvent) {
        if let Some(sink) = self.sink.as_mut() {
            sink.record(ev);
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &RdaConfig {
        &self.cfg
    }

    /// The active policy.
    pub fn policy(&self) -> PolicyKind {
        self.cfg.policy
    }

    /// Counters so far.
    pub fn stats(&self) -> RdaStats {
        self.stats
    }

    /// Current nominally tracked usage of a resource (what the
    /// predicate sees; excludes the overflow bucket).
    pub fn usage(&self, r: Resource) -> u64 {
        self.monitor.usage(r)
    }

    /// Demand held by aged (overflow-admitted) periods.
    pub fn overflow_usage(&self, r: Resource) -> u64 {
        self.monitor.overflow(r)
    }

    /// Number of live periods (admitted + waitlisted) in the registry.
    pub fn live_periods(&self) -> usize {
        self.registry.len()
    }

    /// Iterate the admitted (running) periods.
    pub fn iter_admitted(&self) -> impl Iterator<Item = &crate::registry::PpRecord> {
        self.registry.iter().filter(|r| r.admitted)
    }

    /// Number of periods waiting on a resource.
    pub fn waitlist_len(&self, r: Resource) -> usize {
        self.waitlist.len(r)
    }

    /// Enqueue time of the longest-waiting period on a resource — the
    /// next to be force-admitted when aging is enabled.
    pub fn oldest_wait(&self, r: Resource) -> Option<SimTime> {
        self.waitlist.oldest(r)
    }

    /// A complete, comparable snapshot of the observable state: both
    /// accounting buckets per resource, the waitlists in queue order,
    /// every live period, the activity counters, and the id-allocator
    /// position. O(live periods); used by the differential oracle in
    /// `rda-check` after every replayed event, and cheap enough for
    /// assertions in ordinary tests.
    pub fn snapshot(&self) -> Snapshot {
        let mut usage = [0u64; 2];
        let mut overflow = [0u64; 2];
        let mut waitlists: [Vec<WaitSnap>; 2] = [Vec::new(), Vec::new()];
        for (i, r) in Resource::ALL.into_iter().enumerate() {
            usage[i] = self.monitor.usage(r);
            overflow[i] = self.monitor.overflow(r);
            waitlists[i] = self
                .waitlist
                .iter(r)
                .map(|e| WaitSnap {
                    pp: e.pp,
                    accounted: e.accounted,
                    enqueued_cycles: e.enqueued_at.cycles(),
                })
                .collect();
        }
        Snapshot {
            usage,
            overflow,
            waitlists,
            periods: self
                .registry
                .iter()
                .map(|r| PpSnap {
                    id: r.id,
                    process: r.process,
                    site: r.site,
                    resource: r.demand.resource,
                    declared: r.demand.amount,
                    accounted: r.accounted,
                    admitted: r.admitted,
                    overflow: r.overflow,
                })
                .collect(),
            stats: self.stats,
            allocated: self.registry.allocated(),
        }
    }

    /// Order-independent digest of the fast-path cache (see
    /// [`FastPathCache::digest`]). Not part of [`Snapshot`] — the cache
    /// is an accelerator, not scheduling state — but exposed so the
    /// differential oracle can compare memoisation state too.
    pub fn fastpath_digest(&self) -> u64 {
        self.fastpath.digest()
    }

    /// Cycle cost of a call, by path (the simulation charges this to
    /// the calling thread).
    pub fn call_cost_cycles(&self, fast: bool) -> u64 {
        if fast {
            self.cfg.fast_call_cycles
        } else {
            self.cfg.slow_call_cycles
        }
    }

    /// Audit a declared demand amount against the resource's nominal
    /// capacity. Returns the amount to account, or a typed rejection.
    fn audit_demand(&mut self, resource: Resource, declared: u64) -> Result<u64, RdaError> {
        let capacity = self.monitor.capacity(resource);
        match self.cfg.demand_audit {
            DemandAudit::Trust => Ok(declared),
            DemandAudit::Clamp => {
                if declared > capacity {
                    self.stats.clamped += 1;
                    Ok(capacity)
                } else {
                    Ok(declared)
                }
            }
            DemandAudit::Reject => {
                if declared > capacity {
                    self.stats.clamped += 1;
                    Err(RdaError::DemandOverflow {
                        resource,
                        declared,
                        capacity,
                    })
                } else {
                    Ok(declared)
                }
            }
        }
    }

    /// Process a `pp_begin` from `process` at static site `site`.
    ///
    /// `Err` means the demand auditor refused to track the period
    /// ([`RdaError::DemandOverflow`]): the caller should schedule the
    /// process directly on the OS, exactly as for untracked processes.
    pub fn pp_begin(
        &mut self,
        process: ProcessId,
        site: SiteId,
        demand: PpDemand,
        now: SimTime,
    ) -> Result<BeginOutcome, RdaError> {
        self.books_epoch += 1;
        if !self.cfg.policy.is_gating() {
            return Ok(BeginOutcome::Bypass);
        }
        self.stats.begins += 1;
        let resource = demand.resource;
        let capacity = self.monitor.capacity(resource);
        let mut ev = TraceEvent::at(now.cycles(), EventKind::Begin);
        ev.process = process.0;
        ev.site = site.0;
        ev.resource = Self::trace_resource(resource);
        ev.amount = demand.amount;
        self.emit(ev);

        // Demand audit: a lying process must not be able to poison the
        // load table with an impossible declaration.
        let audited = match self.audit_demand(resource, demand.amount) {
            Ok(amount) => amount,
            Err(err) => {
                ev.kind = EventKind::Reject;
                ev.reject = RejectKind::DemandOverflow;
                self.emit(ev);
                return Err(err);
            }
        };
        let demand = PpDemand {
            amount: audited,
            ..demand
        };
        let accounted = self.cfg.policy.effective_demand(audited, capacity);
        // 64-bit load-table overflow guard (audit-mode independent):
        // accounting this demand must not wrap the usage word.
        if self.monitor.usage(resource).checked_add(accounted).is_none() {
            self.stats.clamped += 1;
            ev.kind = EventKind::Reject;
            ev.reject = RejectKind::DemandOverflow;
            self.emit(ev);
            return Err(RdaError::DemandOverflow {
                resource,
                declared: demand.amount,
                capacity,
            });
        }

        // Saturation circuit breaker: while open, shed the configured
        // demand class before it can touch the predicate or waitlist.
        if let Some(b) = self.cfg.overload.and_then(|o| o.breaker) {
            if self.breaker_open[Self::resource_index(resource)] && audited >= b.shed_min_demand {
                self.stats.shed += 1;
                ev.kind = EventKind::Shed;
                ev.reject = RejectKind::BreakerOpen;
                self.emit(ev);
                return Err(RdaError::BreakerOpen { resource });
            }
        }

        // Fast path: repeat entry of a recently validated site while no
        // one is waitlisted ahead of us.
        if self.waitlist.len(resource) == 0
            && self.fastpath.try_admit(
                process,
                site,
                resource,
                audited,
                self.monitor.usage(resource),
                now,
                self.cfg.min_eval_interval_cycles,
            )
        {
            self.monitor.increment_load(resource, accounted);
            let pp = self
                .registry
                .register(process, site, demand, accounted, true, now);
            self.stats.admitted += 1;
            self.stats.fast_begins += 1;
            ev.kind = EventKind::Admit;
            ev.pp = pp.0;
            ev.amount = accounted;
            ev.fast = true;
            self.emit(ev);
            return Ok(BeginOutcome::Run { pp, fast: true });
        }

        // Slow path: full Algorithm 1.
        match predicate::try_schedule(&demand, &self.monitor, &self.cfg.policy) {
            Decision::Run => {
                if accounted > self.cfg.policy.usage_limit(capacity) {
                    self.stats.oversized_admits += 1;
                }
                self.monitor.increment_load(resource, accounted);
                let pp = self
                    .registry
                    .register(process, site, demand, accounted, true, now);
                self.stats.admitted += 1;
                // Cache the verdict for repeats of this site.
                let threshold = self
                    .cfg
                    .policy
                    .usage_limit(capacity)
                    .saturating_sub(accounted);
                self.fastpath
                    .store_run(process, site, resource, audited, threshold, now);
                ev.kind = EventKind::Admit;
                ev.pp = pp.0;
                ev.amount = accounted;
                self.emit(ev);
                Ok(BeginOutcome::Run { pp, fast: false })
            }
            Decision::Pause => {
                // Bounded-waitlist admission gate: an open system must
                // not queue without bound, so at the cap one side of
                // the queue is shed per the configured policy.
                let mut shed_victim = None;
                if let Some(ov) = self.cfg.overload {
                    if self.waitlist.len(resource) >= ov.waitlist_cap {
                        match ov.shed_policy {
                            ShedPolicy::RejectOldest if self.waitlist.len(resource) > 0 => {
                                // Head drop: evict the longest-queued
                                // waiter — it has the least chance of
                                // meeting any deadline — and queue the
                                // arrival in its place.
                                let victim =
                                    self.waitlist.pop(resource).expect("non-empty checked above");
                                let mut sv = TraceEvent::at(now.cycles(), EventKind::Shed);
                                sv.pp = victim.pp.0;
                                sv.resource = Self::trace_resource(resource);
                                sv.amount = victim.accounted;
                                sv.reject = RejectKind::WaitlistFull;
                                sv.wait_cycles =
                                    now.cycles().saturating_sub(victim.enqueued_at.cycles());
                                match self.registry.complete(victim.pp) {
                                    Some(rec) => {
                                        sv.process = rec.process.0;
                                        sv.site = rec.site.0;
                                    }
                                    None => self.stats.desyncs += 1,
                                }
                                self.stats.shed += 1;
                                self.emit(sv);
                                shed_victim = Some(victim.pp);
                            }
                            ShedPolicy::DegradeToOverflow => {
                                // Degraded admit: straight into the
                                // overflow bucket like an aged
                                // force-admission — invisible to the
                                // predicate, so the nominal books stay
                                // balanced.
                                let pp = self
                                    .registry
                                    .register(process, site, demand, accounted, true, now);
                                match self.registry.get_mut(pp) {
                                    Some(rec) => rec.overflow = true,
                                    None => self.stats.desyncs += 1,
                                }
                                self.monitor.increment_overflow(resource, accounted);
                                self.stats.shed += 1;
                                ev.kind = EventKind::Shed;
                                ev.pp = pp.0;
                                ev.amount = accounted;
                                self.emit(ev);
                                return Ok(BeginOutcome::Run { pp, fast: false });
                            }
                            _ => {
                                // Tail drop (RejectNewest, or
                                // RejectOldest with nothing to evict):
                                // shed the arrival itself, allocating
                                // no id.
                                self.stats.shed += 1;
                                ev.kind = EventKind::Shed;
                                ev.reject = RejectKind::WaitlistFull;
                                self.emit(ev);
                                return Err(RdaError::WaitlistFull { resource });
                            }
                        }
                    }
                }
                let pp = self
                    .registry
                    .register(process, site, demand, accounted, false, now);
                if let Err(e) = self.waitlist.push(
                    resource,
                    WaitEntry {
                        pp,
                        accounted,
                        enqueued_at: now,
                    },
                ) {
                    // A freshly allocated id cannot already be
                    // waitlisted; if it is, the waitlist and registry
                    // have desynchronized. Roll the registration back
                    // so the books stay balanced, and surface the
                    // typed error instead of panicking.
                    self.registry.complete(pp);
                    self.stats.desyncs += 1;
                    return Err(e);
                }
                self.stats.paused += 1;
                self.stats.max_waitlist = self
                    .stats
                    .max_waitlist
                    .max(self.waitlist.len(resource) as u64);
                ev.kind = EventKind::Pause;
                ev.pp = pp.0;
                ev.amount = accounted;
                self.emit(ev);
                Ok(BeginOutcome::Pause {
                    pp,
                    shed: shed_victim,
                })
            }
        }
    }

    /// Process a same-tick batch of `pp_begin`s in one call.
    ///
    /// Semantically this is *defined* as the serial fold: the returned
    /// vector, every counter, and the final books are bit-identical to
    /// calling [`Self::pp_begin`] once per request in slice order at
    /// the same `now` (a differential proptest in `rda-check` enforces
    /// exactly that). What the batch buys is the hot path: with no
    /// trace sink and no overload control configured, the predicate for
    /// the whole batch is evaluated against a **single load-table
    /// read** ([`crate::monitor::LoadView`]) — capacity, usage limit,
    /// and waitlist length live in registers across the loop, and the
    /// monitor is written back once at the end with the exact epoch
    /// advance the serial increments would have produced.
    pub fn pp_begin_batch(
        &mut self,
        reqs: &[BeginRequest],
        now: SimTime,
    ) -> Vec<Result<BeginOutcome, RdaError>> {
        // Tracing and overload control have per-item side effects
        // (event emission, shedding, breaker probes) that the batched
        // loop does not replicate; a non-gating policy never touches
        // the books at all. All three take the literal serial fold.
        if self.sink.is_some() || self.cfg.overload.is_some() || !self.cfg.policy.is_gating() {
            return reqs
                .iter()
                .map(|q| self.pp_begin(q.process, q.site, q.demand, now))
                .collect();
        }
        self.books_epoch += 1;
        let view = self.monitor.load_view();
        let caps = view.capacity;
        let mut usage = view.usage;
        let limits = [
            self.cfg.policy.usage_limit(caps[0]),
            self.cfg.policy.usage_limit(caps[1]),
        ];
        let mut wl_len = [
            self.waitlist.len(Resource::ALL[0]),
            self.waitlist.len(Resource::ALL[1]),
        ];
        // Net effect on the load table, applied in one write-back.
        let mut added = [0u64; 2];
        let mut admits = [0u64; 2];
        let mut out = Vec::with_capacity(reqs.len());
        for q in reqs {
            self.stats.begins += 1;
            let resource = q.demand.resource;
            let i = resource.index();
            let audited = match self.audit_demand(resource, q.demand.amount) {
                Ok(amount) => amount,
                Err(err) => {
                    out.push(Err(err));
                    continue;
                }
            };
            let demand = PpDemand {
                amount: audited,
                ..q.demand
            };
            let accounted = self.cfg.policy.effective_demand(audited, caps[i]);
            // 64-bit load-table overflow guard, against the running
            // in-batch usage (exactly what the serial call would see).
            if usage[i].checked_add(accounted).is_none() {
                self.stats.clamped += 1;
                out.push(Err(RdaError::DemandOverflow {
                    resource,
                    declared: demand.amount,
                    capacity: caps[i],
                }));
                continue;
            }
            // Fast path: repeat entry of a recently validated site
            // while no one is waitlisted ahead of us.
            if wl_len[i] == 0
                && self.fastpath.try_admit(
                    q.process,
                    q.site,
                    resource,
                    audited,
                    usage[i],
                    now,
                    self.cfg.min_eval_interval_cycles,
                )
            {
                usage[i] += accounted;
                added[i] += accounted;
                admits[i] += 1;
                let pp = self
                    .registry
                    .register(q.process, q.site, demand, accounted, true, now);
                self.stats.admitted += 1;
                self.stats.fast_begins += 1;
                out.push(Ok(BeginOutcome::Run { pp, fast: true }));
                continue;
            }
            // Slow path: Algorithm 1 against the register-resident
            // load view.
            let remaining = caps[i] as i128 - usage[i] as i128;
            match predicate::decide(accounted, caps[i], remaining, &self.cfg.policy) {
                Decision::Run => {
                    if accounted > limits[i] {
                        self.stats.oversized_admits += 1;
                    }
                    usage[i] += accounted;
                    added[i] += accounted;
                    admits[i] += 1;
                    let pp = self
                        .registry
                        .register(q.process, q.site, demand, accounted, true, now);
                    self.stats.admitted += 1;
                    let threshold = limits[i].saturating_sub(accounted);
                    self.fastpath
                        .store_run(q.process, q.site, resource, audited, threshold, now);
                    out.push(Ok(BeginOutcome::Run { pp, fast: false }));
                }
                Decision::Pause => {
                    // No overload control on this path, so no shedding:
                    // register and queue.
                    let pp = self
                        .registry
                        .register(q.process, q.site, demand, accounted, false, now);
                    if let Err(e) = self.waitlist.push(
                        resource,
                        WaitEntry {
                            pp,
                            accounted,
                            enqueued_at: now,
                        },
                    ) {
                        self.registry.complete(pp);
                        self.stats.desyncs += 1;
                        out.push(Err(e));
                        continue;
                    }
                    wl_len[i] += 1;
                    self.stats.paused += 1;
                    self.stats.max_waitlist = self.stats.max_waitlist.max(wl_len[i] as u64);
                    out.push(Ok(BeginOutcome::Pause { pp, shed: None }));
                }
            }
        }
        self.monitor.commit_loads(added, admits);
        out
    }

    /// Process a `pp_end` for a period previously returned by
    /// [`Self::pp_begin`]. Returns the waitlisted periods this
    /// completion admitted.
    ///
    /// Misbehaving applications get a typed error instead of a panic:
    /// an id that was never allocated ([`RdaError::UnknownPp`]), a
    /// period that already ended or was reclaimed when its process
    /// exited ([`RdaError::DoubleEnd`]), or a period still waitlisted —
    /// whose process should be paused and cannot legally reach the end
    /// marker ([`RdaError::EndWhileWaitlisted`]). The extension's state
    /// is untouched on every error path.
    pub fn pp_end(&mut self, pp: PpId, now: SimTime) -> Result<EndOutcome, RdaError> {
        self.books_epoch += 1;
        self.stats.ends += 1;
        let mut ev = TraceEvent::at(now.cycles(), EventKind::End);
        ev.pp = pp.0;
        let Some(live) = self.registry.get(pp) else {
            self.stats.rejected_ends += 1;
            let (err, reject) = if self.registry.was_allocated(pp) {
                (RdaError::DoubleEnd(pp), RejectKind::DoubleEnd)
            } else {
                (RdaError::UnknownPp(pp), RejectKind::UnknownPp)
            };
            ev.kind = EventKind::Reject;
            ev.reject = reject;
            self.emit(ev);
            return Err(err);
        };
        if !live.admitted {
            let process = live.process.0;
            let site = live.site.0;
            self.stats.rejected_ends += 1;
            ev.kind = EventKind::Reject;
            ev.reject = RejectKind::EndWhileWaitlisted;
            ev.process = process;
            ev.site = site;
            self.emit(ev);
            return Err(RdaError::EndWhileWaitlisted(pp));
        }
        // `get` returned the record above and only this method removes
        // it between the two calls, so `complete` cannot fail — but if
        // the registry has desynchronized anyway, fail this one call
        // with a typed error rather than take the scheduler down.
        let Some(record) = self.registry.complete(pp) else {
            self.stats.desyncs += 1;
            return Err(RdaError::RegistryDesync(pp));
        };
        let resource = record.demand.resource;
        self.release(&record);
        ev.process = record.process.0;
        ev.site = record.site.0;
        ev.resource = Self::trace_resource(resource);
        ev.amount = record.accounted;

        let no_waiters = self.waitlist.len(resource) == 0;
        // Fast path: nothing can be woken (no waiters) *and* the site
        // was validated recently, so the release is a shared-page
        // decrement with deferred registry cleanup.
        if no_waiters
            && self.fastpath.is_fresh(
                record.process,
                record.site,
                now,
                self.cfg.min_eval_interval_cycles,
            )
        {
            self.stats.fast_ends += 1;
            ev.fast = true;
            self.emit(ev);
            return Ok(EndOutcome {
                fast: true,
                resumed: Vec::new(),
            });
        }
        self.emit(ev);
        // Slow completion with no waiters: nothing to resume.
        if no_waiters {
            return Ok(EndOutcome {
                fast: false,
                resumed: Vec::new(),
            });
        }

        let resumed = self.drain_waitlist(resource, now);
        Ok(EndOutcome {
            fast: false,
            resumed,
        })
    }

    /// Release a completed or reclaimed record's demand from the
    /// matching accounting bucket.
    fn release(&mut self, record: &crate::registry::PpRecord) {
        let resource = record.demand.resource;
        if record.overflow {
            self.monitor.decrement_overflow(resource, record.accounted);
        } else {
            self.monitor.decrement_load(resource, record.accounted);
        }
    }

    /// Reclaim everything a dying (or exiting) process holds: release
    /// the demand of its admitted periods — nominal or overflow bucket
    /// as appropriate — cancel its waitlisted periods, drop its
    /// fast-path entries, and re-walk the waitlist with the released
    /// capacity. Returns the periods admitted from the waitlist; the
    /// caller must wake their processes.
    ///
    /// This is the kernel's exit-time reaper: it makes leaked `pp_end`s
    /// and mid-period crashes recoverable instead of permanent capacity
    /// leaks. Calling it for a process with no live periods is a cheap
    /// no-op, so callers may invoke it unconditionally on every exit.
    pub fn process_exit(&mut self, process: ProcessId, now: SimTime) -> Vec<(PpId, ProcessId)> {
        self.books_epoch += 1;
        let live: Vec<PpId> = self
            .registry
            .iter()
            .filter(|r| r.process == process)
            .map(|r| r.id)
            .collect();
        let had_any = !live.is_empty();
        let reclaimed = live.len() as u64;
        // Which resources this exit actually touched: released admitted
        // capacity, or removed a waitlist entry (which can expose a
        // fitting head behind the cancelled one). Only those queues can
        // admit anyone, so only those need re-walking below.
        let mut touched = [false; Resource::ALL.len()];
        for pp in live {
            // Ids were collected from the registry in this same
            // critical section, so `complete` cannot fail; tolerate a
            // desynchronized registry by skipping the id instead of
            // panicking mid-reap.
            let Some(rec) = self.registry.complete(pp) else {
                self.stats.desyncs += 1;
                continue;
            };
            touched[Self::resource_index(rec.demand.resource)] = true;
            if rec.admitted {
                self.release(&rec);
            } else {
                self.waitlist.cancel(rec.demand.resource, pp);
            }
            self.stats.reclaimed += 1;
        }
        self.fastpath.invalidate_process(process);
        let mut ev = TraceEvent::at(now.cycles(), EventKind::Exit);
        ev.process = process.0;
        ev.amount = reclaimed;
        self.emit(ev);
        if !had_any {
            return Vec::new();
        }
        let mut resumed = Vec::new();
        for r in Resource::ALL {
            if touched[Self::resource_index(r)] || self.has_expired_waiter(r, now) {
                resumed.extend(self.drain_waitlist(r, now));
            }
        }
        resumed
    }

    /// Apply waitlist aging at `now`: expire every waiter past its
    /// deadline (when deadlines are configured), force-admit every
    /// period that has waited past the aging timeout (no-op when aging
    /// is disabled), admit any newly fitting heads, then evaluate the
    /// saturation circuit breaker. Returns the admitted and expired
    /// periods; the caller must wake the former and fail the latter.
    ///
    /// The simulation driver calls this on its aging deadline so a
    /// starved period is admitted even when no `pp_end` ever arrives;
    /// with overload control enabled it must be called on every tick —
    /// breaker hysteresis advances only here.
    pub fn age_waitlist(&mut self, now: SimTime) -> AgeOutcome {
        self.books_epoch += 1;
        let mut out = AgeOutcome::default();
        if self.cfg.waitlist_timeout_cycles.is_none() && self.cfg.overload.is_none() {
            return out;
        }
        // Deadline expiry first: a waiter past its deadline can no
        // longer usefully be admitted, and removing a blocking head may
        // expose fitting entries queued behind it.
        let deadline = self.cfg.overload.and_then(|o| o.deadline_cycles);
        let mut expired_touched = [false; Resource::ALL.len()];
        if let Some(deadline) = deadline {
            for r in Resource::ALL {
                while let Some(entry) = self.waitlist.pop_expired(r, now, deadline) {
                    match self.registry.complete(entry.pp) {
                        Some(rec) => {
                            self.stats.expired += 1;
                            expired_touched[Self::resource_index(r)] = true;
                            let mut ev = TraceEvent::at(now.cycles(), EventKind::Expire);
                            ev.process = rec.process.0;
                            ev.site = rec.site.0;
                            ev.pp = entry.pp.0;
                            ev.resource = Self::trace_resource(r);
                            ev.amount = entry.accounted;
                            ev.wait_cycles =
                                now.cycles().saturating_sub(entry.enqueued_at.cycles());
                            self.emit(ev);
                            out.expired.push((entry.pp, rec.process));
                        }
                        None => self.stats.desyncs += 1,
                    }
                }
            }
        }
        for r in Resource::ALL {
            // No capacity was released since the last drain, so a queue
            // with neither a deadline removal nor an aged-past-timeout
            // waiter cannot admit anyone: skip it. The aging probe is
            // O(1) via the waitlist's cached minimum enqueue time.
            if expired_touched[Self::resource_index(r)] || self.has_expired_waiter(r, now) {
                out.resumed.extend(self.drain_waitlist(r, now));
            }
        }
        self.evaluate_breaker(now);
        out
    }

    /// Evaluate the saturation circuit breaker on an aging tick: trip
    /// after [`crate::config::BreakerConfig::trip_after`] consecutive
    /// ticks at or above the high-water occupancy (nominal + overflow),
    /// reset after `recover_after` consecutive ticks strictly below the
    /// low-water mark. Any tick off the streak resets its counter —
    /// that is the hysteresis that keeps the breaker from flapping.
    fn evaluate_breaker(&mut self, now: SimTime) {
        let Some(b) = self.cfg.overload.and_then(|o| o.breaker) else {
            return;
        };
        for r in Resource::ALL {
            let i = Self::resource_index(r);
            let occupancy = self.monitor.usage(r).saturating_add(self.monitor.overflow(r));
            if self.breaker_open[i] {
                if occupancy < b.low_water {
                    self.breaker_below[i] += 1;
                    if self.breaker_below[i] >= b.recover_after {
                        self.breaker_open[i] = false;
                        self.breaker_below[i] = 0;
                        let mut ev = TraceEvent::at(now.cycles(), EventKind::BreakerReset);
                        ev.resource = Self::trace_resource(r);
                        ev.amount = occupancy;
                        self.emit(ev);
                    }
                } else {
                    self.breaker_below[i] = 0;
                }
            } else if occupancy >= b.high_water {
                self.breaker_above[i] += 1;
                if self.breaker_above[i] >= b.trip_after {
                    self.breaker_open[i] = true;
                    self.breaker_above[i] = 0;
                    self.stats.breaker_trips += 1;
                    let mut ev = TraceEvent::at(now.cycles(), EventKind::BreakerTrip);
                    ev.resource = Self::trace_resource(r);
                    ev.amount = occupancy;
                    self.emit(ev);
                }
            } else {
                self.breaker_above[i] = 0;
            }
        }
    }

    /// Whether the saturation breaker is currently open for `r`.
    pub fn breaker_is_open(&self, r: Resource) -> bool {
        self.breaker_open[Self::resource_index(r)]
    }

    /// Record a client-side retry of a previously shed or expired
    /// arrival. The extension never schedules retries itself — the
    /// caller owns the backoff clock — but counting them here puts the
    /// retry stream into the stats digest and the trace, where the
    /// reference model can check it.
    pub fn note_retry(
        &mut self,
        process: ProcessId,
        site: SiteId,
        resource: Resource,
        now: SimTime,
    ) {
        self.stats.retried += 1;
        let mut ev = TraceEvent::at(now.cycles(), EventKind::Retry);
        ev.process = process.0;
        ev.site = site.0;
        ev.resource = Self::trace_resource(resource);
        self.emit(ev);
    }

    /// True when resource `r` has at least one waiter past the aging
    /// timeout at `now`. O(1): compares the queue's cached minimum
    /// enqueue time. Always false when aging is disabled.
    fn has_expired_waiter(&self, r: Resource, now: SimTime) -> bool {
        let Some(timeout) = self.cfg.waitlist_timeout_cycles else {
            return false;
        };
        match self.waitlist.oldest(r) {
            Some(oldest) => now.since(oldest).cycles() >= timeout,
            None => false,
        }
    }

    /// Stable index of a resource into per-resource scratch arrays
    /// (matches the order of [`Resource::ALL`]).
    fn resource_index(r: Resource) -> usize {
        match r {
            Resource::Llc => 0,
            Resource::MemBandwidth => 1,
        }
    }

    /// Walk the FIFO admitting while the head fits (Figure 6: "attempt
    /// to schedule any waiting threads previously blocked due to
    /// resource constraints"), interleaved with aging: when the
    /// non-fitting head has waited past the timeout it is force-admitted
    /// under the overflow bucket, which can unblock fitting periods
    /// queued behind it.
    fn drain_waitlist(&mut self, resource: Resource, now: SimTime) -> Vec<(PpId, ProcessId)> {
        let mut resumed = Vec::new();
        // Aging-order assertion: successive force-admissions within one
        // drain must be strictly oldest-first by enqueue time.
        let mut last_aged: Option<SimTime> = None;
        loop {
            // Admit while the head fits nominally. The probe needs no
            // registry lookup: a waitlist entry stores its *accounted*
            // demand, and for a fixed capacity and policy the predicate
            // on the original declaration reduces to [`predicate::decide`]
            // on that accounted value (they were derived from each other
            // at begin time), so the verdict is bit-identical to the
            // full `try_schedule` walk the head-scan used to pay for.
            while let Some(head) = self.waitlist.front(resource) {
                let decision = predicate::decide(
                    head.accounted,
                    self.monitor.capacity(resource),
                    self.monitor.remaining_signed(resource),
                    &self.cfg.policy,
                );
                #[cfg(debug_assertions)]
                if let Some(rec) = self.registry.get(head.pp) {
                    debug_assert_eq!(
                        decision,
                        predicate::try_schedule(&rec.demand, &self.monitor, &self.cfg.policy),
                        "accounted-gate verdict diverged from the registry walk"
                    );
                }
                if decision != Decision::Run {
                    break;
                }
                let Some(head) = self.waitlist.pop(resource) else {
                    break; // front() returned Some above; defensive
                };
                self.monitor.increment_load(resource, head.accounted);
                // A waitlist entry without a registry record means the
                // books have desynchronized: roll the increment back,
                // drop the orphan entry, and count it instead of
                // admitting garbage (or panicking).
                let Some(rec) = self.registry.get_mut(head.pp) else {
                    self.monitor.decrement_load(resource, head.accounted);
                    self.stats.desyncs += 1;
                    continue;
                };
                rec.admitted = true;
                let process = rec.process;
                let site = rec.site;
                let amount = rec.demand.amount;
                let threshold = self
                    .cfg
                    .policy
                    .usage_limit(self.monitor.capacity(resource))
                    .saturating_sub(head.accounted);
                self.fastpath
                    .store_run(process, site, resource, amount, threshold, now);
                self.stats.resumed += 1;
                let mut ev = TraceEvent::at(now.cycles(), EventKind::Resume);
                ev.process = process.0;
                ev.site = site.0;
                ev.pp = head.pp.0;
                ev.resource = Self::trace_resource(resource);
                ev.amount = head.accounted;
                ev.wait_cycles = now.cycles().saturating_sub(head.enqueued_at.cycles());
                self.emit(ev);
                resumed.push((head.pp, process));
            }
            // The head (if any) does not fit. Aging: force-admit it
            // into the overflow bucket once it has waited long enough.
            let Some(timeout) = self.cfg.waitlist_timeout_cycles else {
                break;
            };
            let Some(aged) = self.waitlist.pop_expired(resource, now, timeout) else {
                break;
            };
            debug_assert!(
                last_aged.is_none_or(|t| t <= aged.enqueued_at),
                "aging force-admitted out of oldest-first order"
            );
            last_aged = Some(aged.enqueued_at);
            // Same desync tolerance as the nominal path: an aged entry
            // without a registry record is dropped and counted, not
            // force-admitted into thin air.
            let Some(rec) = self.registry.get_mut(aged.pp) else {
                self.stats.desyncs += 1;
                continue;
            };
            rec.admitted = true;
            rec.overflow = true;
            let process = rec.process;
            let site = rec.site;
            self.monitor.increment_overflow(resource, aged.accounted);
            self.stats.aged_admissions += 1;
            let mut ev = TraceEvent::at(now.cycles(), EventKind::Age);
            ev.process = process.0;
            ev.site = site.0;
            ev.pp = aged.pp.0;
            ev.resource = Self::trace_resource(resource);
            ev.amount = aged.accounted;
            ev.wait_cycles = now.cycles().saturating_sub(aged.enqueued_at.cycles());
            self.emit(ev);
            resumed.push((aged.pp, process));
            // Re-walk: removing the blocking head may let queued
            // periods fit nominally now.
        }
        resumed
    }

    /// Monotonic counter of book mutations (see the field doc). An
    /// unchanged value between two observations means the registry,
    /// monitor, and waitlist are bit-identical to the last look, so a
    /// previously passing [`Self::check_invariants`] still holds.
    pub fn books_epoch(&self) -> u64 {
        self.books_epoch
    }

    /// Internal consistency: the monitor's two buckets equal the
    /// registry's accounted sums, and the waitlist agrees with the
    /// registry record by record. Any violation is a scheduler bug —
    /// never an application bug — reported as a typed
    /// [`RdaError::InvariantViolation`].
    pub fn check_invariants(&self) -> Result<(), RdaError> {
        // One pass over the registry instead of six (this runs after
        // every simulation step when paranoid checking is on).
        let sums = self.registry.audit_sums();
        for r in Resource::ALL {
            let i = Self::resource_index(r);
            let checks = [
                (
                    InvariantKind::UsageMismatch,
                    sums.accounted[i],
                    self.monitor.usage(r),
                ),
                (
                    InvariantKind::OverflowMismatch,
                    sums.overflow[i],
                    self.monitor.overflow(r),
                ),
            ];
            for (kind, expected, actual) in checks {
                if expected != actual {
                    return Err(RdaError::InvariantViolation {
                        resource: r,
                        kind,
                        expected,
                        actual,
                    });
                }
            }
            for entry in self.waitlist.iter(r) {
                match self.registry.get(entry.pp) {
                    None => {
                        return Err(RdaError::InvariantViolation {
                            resource: r,
                            kind: InvariantKind::WaitlistRecordMissing,
                            expected: entry.pp.0,
                            actual: 0,
                        })
                    }
                    Some(rec) if rec.admitted => {
                        return Err(RdaError::InvariantViolation {
                            resource: r,
                            kind: InvariantKind::WaitlistAdmitted,
                            expected: 0,
                            actual: entry.pp.0,
                        })
                    }
                    Some(_) => {}
                }
            }
            let expected = sums.waiting[i];
            let actual = self.waitlist.len(r) as u64;
            if expected != actual {
                return Err(RdaError::InvariantViolation {
                    resource: r,
                    kind: InvariantKind::WaitlistCountMismatch,
                    expected,
                    actual,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::mb;
    use rda_machine::{MachineConfig, ReuseLevel};

    fn ext(policy: PolicyKind) -> RdaExtension {
        RdaExtension::new(RdaConfig::for_machine(
            &MachineConfig::xeon_e5_2420(),
            policy,
        ))
    }

    fn ext_cfg(cfg: RdaConfig) -> RdaExtension {
        RdaExtension::new(cfg)
    }

    fn strict_cfg() -> RdaConfig {
        RdaConfig::for_machine(&MachineConfig::xeon_e5_2420(), PolicyKind::Strict)
    }

    fn demand(ws_mb: f64) -> PpDemand {
        PpDemand::llc(mb(ws_mb), ReuseLevel::High)
    }

    fn t(cycles: u64) -> SimTime {
        SimTime::from_cycles(cycles)
    }

    fn begin(e: &mut RdaExtension, p: u32, site: u32, d: PpDemand, now: SimTime) -> BeginOutcome {
        e.pp_begin(ProcessId(p), SiteId(site), d, now).unwrap()
    }

    fn must_run(e: &mut RdaExtension, p: u32, site: u32, d: PpDemand, now: SimTime) -> PpId {
        match begin(e, p, site, d, now) {
            BeginOutcome::Run { pp, .. } => pp,
            other => panic!("expected Run, got {other:?}"),
        }
    }

    #[test]
    fn default_only_bypasses_tracking() {
        let mut e = ext(PolicyKind::DefaultOnly);
        let out = begin(&mut e, 0, 0, demand(100.0), t(0));
        assert_eq!(out, BeginOutcome::Bypass);
        assert_eq!(e.stats().begins, 0);
        assert_eq!(e.usage(Resource::Llc), 0);
    }

    #[test]
    fn strict_admits_until_full_then_pauses() {
        let mut e = ext(PolicyKind::Strict);
        // LLC is 15 MB; three 5 MB periods fit, the fourth pauses.
        let mut pps = Vec::new();
        for p in 0..3 {
            pps.push(must_run(&mut e, p, 0, demand(5.0), t(p as u64)));
        }
        let paused = match begin(&mut e, 3, 0, demand(5.0), t(3)) {
            BeginOutcome::Pause { pp, .. } => pp,
            other => panic!("expected Pause, got {other:?}"),
        };
        assert_eq!(e.waitlist_len(Resource::Llc), 1);
        e.check_invariants().unwrap();

        // Ending one admitted period resumes the waiter.
        let out = e.pp_end(pps[0], t(10)).unwrap();
        assert!(!out.fast);
        assert_eq!(out.resumed, vec![(paused, ProcessId(3))]);
        assert_eq!(e.waitlist_len(Resource::Llc), 0);
        e.check_invariants().unwrap();
    }

    #[test]
    fn compromise_allows_double_subscription() {
        let mut e = ext(PolicyKind::compromise_default());
        // 15 MB LLC, x=2 → 30 MB limit: five 6 MB periods admitted, the
        // sixth pauses.
        for p in 0..5 {
            assert!(matches!(
                begin(&mut e, p, 0, demand(6.0), t(p as u64)),
                BeginOutcome::Run { .. }
            ));
        }
        assert!(matches!(
            begin(&mut e, 5, 0, demand(6.0), t(5)),
            BeginOutcome::Pause { .. }
        ));
    }

    #[test]
    fn end_with_empty_waitlist_is_fast() {
        let mut e = ext(PolicyKind::Strict);
        let pp = must_run(&mut e, 0, 0, demand(1.0), t(0));
        let out = e.pp_end(pp, t(1)).unwrap();
        assert!(out.fast);
        assert!(out.resumed.is_empty());
        assert_eq!(e.stats().fast_ends, 1);
    }

    #[test]
    fn repeat_site_hits_fast_path() {
        let mut e = ext(PolicyKind::Strict);
        let interval = e.config().min_eval_interval_cycles;
        // First begin: slow.
        let pp = match begin(&mut e, 0, 9, demand(2.0), t(0)) {
            BeginOutcome::Run { pp, fast } => {
                assert!(!fast);
                pp
            }
            _ => panic!(),
        };
        e.pp_end(pp, t(10)).unwrap();
        // Repeat within the interval: fast.
        match begin(&mut e, 0, 9, demand(2.0), t(20)) {
            BeginOutcome::Run { pp, fast } => {
                assert!(fast);
                e.pp_end(pp, t(30)).unwrap();
            }
            _ => panic!(),
        }
        // Repeat after expiry: slow again.
        match begin(&mut e, 0, 9, demand(2.0), t(30 + interval + 1)) {
            BeginOutcome::Run { fast, .. } => assert!(!fast),
            _ => panic!(),
        }
        assert_eq!(e.stats().fast_begins, 1);
    }

    #[test]
    fn fast_path_never_admits_what_predicate_would_deny() {
        let mut e = ext(PolicyKind::Strict);
        // Warm the cache with a 6 MB site.
        let pp = must_run(&mut e, 0, 1, demand(6.0), t(0));
        e.pp_end(pp, t(1)).unwrap();
        // Fill the cache to 10 MB with another process.
        assert!(matches!(
            begin(&mut e, 1, 2, demand(10.0), t(2)),
            BeginOutcome::Run { .. }
        ));
        // The cached 6 MB site no longer fits (10 + 6 > 15): the fast
        // check must fail and the slow predicate must pause it.
        assert!(matches!(
            begin(&mut e, 0, 1, demand(6.0), t(3)),
            BeginOutcome::Pause { .. }
        ));
        e.check_invariants().unwrap();
    }

    #[test]
    fn waitlist_resume_is_fifo_and_cascading() {
        let mut e = ext(PolicyKind::Strict);
        let a = must_run(&mut e, 0, 0, demand(14.0), t(0));
        // Three small periods queue up behind the big one.
        for p in 1..4 {
            assert!(matches!(
                begin(&mut e, p, 0, demand(4.0), t(p as u64)),
                BeginOutcome::Pause { .. }
            ));
        }
        // Ending the 14 MB period admits all three 4 MB waiters (12 < 15).
        let out = e.pp_end(a, t(10)).unwrap();
        assert_eq!(out.resumed.len(), 3);
        let procs: Vec<u32> = out.resumed.iter().map(|&(_, p)| p.0).collect();
        assert_eq!(procs, vec![1, 2, 3], "FIFO order");
        e.check_invariants().unwrap();
    }

    #[test]
    fn algorithm1_admits_fitting_demand_despite_waiters() {
        // Algorithm 1 has no waiter check: a new demand that fits runs
        // immediately even while a bigger period is waitlisted.
        let mut e = ext(PolicyKind::Strict);
        let a = must_run(&mut e, 0, 0, demand(10.0), t(0));
        assert!(matches!(
            begin(&mut e, 1, 0, demand(12.0), t(1)),
            BeginOutcome::Pause { .. }
        ));
        // 10 + 2 <= 15: admitted straight away, ahead of the waiter.
        assert!(matches!(
            begin(&mut e, 2, 1, demand(2.0), t(2)),
            BeginOutcome::Run { .. }
        ));
        e.check_invariants().unwrap();
        // Ending the 10 MB period leaves 15-2=13; 12 fits in 13, so the
        // waiter resumes now.
        let out = e.pp_end(a, t(3)).unwrap();
        assert_eq!(out.resumed.len(), 1);
        assert_eq!(out.resumed[0].1, ProcessId(1));
        assert_eq!(e.waitlist_len(Resource::Llc), 0);
    }

    #[test]
    fn head_of_line_blocking_preserves_fifo() {
        let mut e = ext(PolicyKind::Strict);
        let a = must_run(&mut e, 0, 0, demand(10.0), t(0));
        let b = must_run(&mut e, 3, 0, demand(4.0), t(1));
        // Big waiter first, small waiter second (usage is 14 MB).
        assert!(matches!(
            begin(&mut e, 1, 0, demand(12.0), t(2)),
            BeginOutcome::Pause { .. }
        ));
        assert!(matches!(
            begin(&mut e, 2, 0, demand(2.0), t(3)),
            BeginOutcome::Pause { .. }
        ));
        // Ending the 4 MB period leaves 10 MB used, 5 MB free: the
        // 12 MB head doesn't fit, and the FIFO resume loop stops there —
        // the 2 MB waiter behind it stays queued even though it fits.
        let out = e.pp_end(b, t(4)).unwrap();
        assert!(out.resumed.is_empty());
        assert_eq!(e.waitlist_len(Resource::Llc), 2);
        let _ = a;
    }

    #[test]
    fn oversized_demand_admitted_with_guard() {
        let mut e = ext(PolicyKind::Strict);
        match begin(&mut e, 0, 0, demand(20.0), t(0)) {
            BeginOutcome::Run { .. } => {}
            other => panic!("oversized demand must run, got {other:?}"),
        }
        assert_eq!(e.stats().oversized_admits, 1);
        e.check_invariants().unwrap();
    }

    /// Starvation freedom without aging: a period whose demand alone
    /// exceeds LLC capacity can never pass the predicate, so FIFO
    /// waiting would park it forever. The oversized-demand guard must
    /// admit it even while the cache is fully subscribed — and the
    /// system must still drain back to idle afterwards.
    #[test]
    fn oversized_demand_is_never_starved() {
        let cfg = strict_cfg();
        let capacity = cfg.llc_capacity;
        let mut e = ext_cfg(cfg);
        // Saturate the LLC with three periods.
        let mut small = Vec::new();
        for p in 0..3 {
            let d = PpDemand::llc(capacity / 3, ReuseLevel::High);
            small.push(must_run(&mut e, p, 0, d, t(p as u64)));
        }
        // A demand bigger than the whole cache arrives while it is
        // full. Waitlisting it could never end (it will not fit even on
        // an idle cache), so it must be admitted immediately.
        let huge = PpDemand::llc(capacity + mb(5.0), ReuseLevel::High);
        let huge_pp = must_run(&mut e, 9, 1, huge, t(10));
        assert_eq!(e.stats().oversized_admits, 1);
        e.check_invariants().unwrap();

        // Everything still drains to idle.
        e.pp_end(huge_pp, t(20)).unwrap();
        for pp in small {
            e.pp_end(pp, t(30)).unwrap();
        }
        assert_eq!(e.usage(Resource::Llc), 0);
        assert_eq!(e.waitlist_len(Resource::Llc), 0);
        e.check_invariants().unwrap();
    }

    #[test]
    fn process_exit_releases_and_resumes() {
        let mut e = ext(PolicyKind::Strict);
        assert!(matches!(
            begin(&mut e, 0, 0, demand(14.0), t(0)),
            BeginOutcome::Run { .. }
        ));
        assert!(matches!(
            begin(&mut e, 1, 0, demand(5.0), t(1)),
            BeginOutcome::Pause { .. }
        ));
        let resumed = e.process_exit(ProcessId(0), t(2));
        assert_eq!(resumed.len(), 1);
        assert_eq!(resumed[0].1, ProcessId(1));
        assert_eq!(e.usage(Resource::Llc), mb(5.0));
        assert_eq!(e.stats().reclaimed, 1);
        e.check_invariants().unwrap();
    }

    #[test]
    fn process_exit_cancels_waitlisted_periods() {
        let mut e = ext(PolicyKind::Strict);
        let a = must_run(&mut e, 0, 0, demand(14.0), t(0));
        assert!(matches!(
            begin(&mut e, 1, 0, demand(5.0), t(1)),
            BeginOutcome::Pause { .. }
        ));
        // The waiting process dies before it is ever admitted: its
        // entry must not outlive it.
        let resumed = e.process_exit(ProcessId(1), t(2));
        assert!(resumed.is_empty());
        assert_eq!(e.waitlist_len(Resource::Llc), 0);
        assert_eq!(e.live_periods(), 1);
        assert_eq!(e.stats().reclaimed, 1);
        e.check_invariants().unwrap();
        e.pp_end(a, t(3)).unwrap();
        assert_eq!(e.usage(Resource::Llc), 0);
    }

    #[test]
    fn process_exit_reclaims_leaked_periods() {
        let mut e = ext(PolicyKind::Strict);
        // Two periods begun, neither ever ended (leaked pp_ends).
        must_run(&mut e, 7, 0, demand(6.0), t(0));
        must_run(&mut e, 7, 1, demand(4.0), t(1));
        assert_eq!(e.usage(Resource::Llc), mb(10.0));
        let resumed = e.process_exit(ProcessId(7), t(100));
        assert!(resumed.is_empty());
        assert_eq!(e.usage(Resource::Llc), 0, "all leaked demand reclaimed");
        assert_eq!(e.live_periods(), 0);
        assert_eq!(e.stats().reclaimed, 2);
        e.check_invariants().unwrap();
    }

    #[test]
    fn process_exit_without_periods_is_a_noop() {
        let mut e = ext(PolicyKind::Strict);
        let pp = must_run(&mut e, 0, 0, demand(2.0), t(0));
        assert!(e.process_exit(ProcessId(42), t(1)).is_empty());
        assert_eq!(e.stats().reclaimed, 0);
        assert_eq!(e.usage(Resource::Llc), mb(2.0));
        e.pp_end(pp, t(2)).unwrap();
    }

    #[test]
    fn end_of_unknown_and_completed_periods_is_typed() {
        let mut e = ext(PolicyKind::Strict);
        // Never-allocated id.
        assert_eq!(
            e.pp_end(PpId(999), t(0)),
            Err(RdaError::UnknownPp(PpId(999)))
        );
        let pp = must_run(&mut e, 0, 0, demand(1.0), t(0));
        e.pp_end(pp, t(1)).unwrap();
        // Same id again: a double end, not an unknown id.
        assert_eq!(e.pp_end(pp, t(2)), Err(RdaError::DoubleEnd(pp)));
        assert_eq!(e.stats().rejected_ends, 2);
        // The books are untouched by the rejections.
        assert_eq!(e.usage(Resource::Llc), 0);
        e.check_invariants().unwrap();
    }

    #[test]
    fn end_while_waitlisted_is_rejected() {
        let mut e = ext(PolicyKind::Strict);
        let a = must_run(&mut e, 0, 0, demand(14.0), t(0));
        let waiting = match begin(&mut e, 1, 0, demand(5.0), t(1)) {
            BeginOutcome::Pause { pp, .. } => pp,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            e.pp_end(waiting, t(2)),
            Err(RdaError::EndWhileWaitlisted(waiting))
        );
        // The entry is still queued and resumes normally.
        let out = e.pp_end(a, t(3)).unwrap();
        assert_eq!(out.resumed, vec![(waiting, ProcessId(1))]);
        e.check_invariants().unwrap();
    }

    #[test]
    fn audit_clamp_bounds_a_lying_demand() {
        let cfg = strict_cfg().with_demand_audit(DemandAudit::Clamp);
        let capacity = cfg.llc_capacity;
        let mut e = ext_cfg(cfg);
        // A process claims 10× the cache. Clamped to capacity, it is
        // admitted on the idle cache through the normal predicate (no
        // oversized guard needed) and holds exactly one capacity.
        let lie = PpDemand::llc(capacity * 10, ReuseLevel::High);
        let pp = must_run(&mut e, 0, 0, lie, t(0));
        assert_eq!(e.stats().clamped, 1);
        assert_eq!(e.stats().oversized_admits, 0);
        assert_eq!(e.usage(Resource::Llc), capacity);
        e.check_invariants().unwrap();
        e.pp_end(pp, t(1)).unwrap();
        assert_eq!(e.usage(Resource::Llc), 0);
    }

    #[test]
    fn audit_reject_refuses_a_lying_demand() {
        let cfg = strict_cfg().with_demand_audit(DemandAudit::Reject);
        let capacity = cfg.llc_capacity;
        let mut e = ext_cfg(cfg);
        let lie = PpDemand::llc(capacity + 1, ReuseLevel::High);
        let err = e.pp_begin(ProcessId(0), SiteId(0), lie, t(0)).unwrap_err();
        assert_eq!(
            err,
            RdaError::DemandOverflow {
                resource: Resource::Llc,
                declared: capacity + 1,
                capacity,
            }
        );
        assert_eq!(e.stats().clamped, 1);
        assert_eq!(e.live_periods(), 0, "rejected demand is not tracked");
        // An honest demand still goes through.
        assert!(matches!(
            begin(&mut e, 0, 0, demand(2.0), t(1)),
            BeginOutcome::Run { .. }
        ));
        e.check_invariants().unwrap();
    }

    #[test]
    fn aging_force_admits_a_starved_waiter() {
        let cfg = strict_cfg().with_waitlist_timeout_cycles(1_000);
        let mut e = ext_cfg(cfg);
        let hog = must_run(&mut e, 0, 0, demand(14.0), t(0));
        let starved = match begin(&mut e, 1, 0, demand(10.0), t(10)) {
            BeginOutcome::Pause { pp, .. } => pp,
            other => panic!("{other:?}"),
        };
        // Before the timeout, nothing moves.
        assert_eq!(e.age_waitlist(t(500)), AgeOutcome::default());
        assert_eq!(e.waitlist_len(Resource::Llc), 1);
        // After it, the waiter is force-admitted into the overflow
        // bucket — the nominal books are untouched.
        let out = e.age_waitlist(t(1_010));
        assert_eq!(out.resumed, vec![(starved, ProcessId(1))]);
        assert!(out.expired.is_empty(), "no deadlines configured");
        assert_eq!(e.stats().aged_admissions, 1);
        assert_eq!(e.usage(Resource::Llc), mb(14.0));
        assert_eq!(e.overflow_usage(Resource::Llc), mb(10.0));
        e.check_invariants().unwrap();
        // Both paths drain their own bucket.
        e.pp_end(starved, t(2_000)).unwrap();
        assert_eq!(e.overflow_usage(Resource::Llc), 0);
        e.pp_end(hog, t(2_001)).unwrap();
        assert_eq!(e.usage(Resource::Llc), 0);
        e.check_invariants().unwrap();
    }

    #[test]
    fn aging_force_admits_oldest_first_despite_queue_order() {
        // A non-monotonic caller (trace replay, direct API use) parks
        // a later-stamped period ahead of an earlier-stamped one.
        // Aging must force-admit by wait time, not queue position: the
        // entry that has actually waited past the timeout goes first,
        // and a younger queue-head must not block it.
        let cfg = strict_cfg().with_waitlist_timeout_cycles(1_000);
        let mut e = ext_cfg(cfg);
        let _hog = must_run(&mut e, 0, 0, demand(14.0), t(0));
        let young = match begin(&mut e, 1, 0, demand(10.0), t(500)) {
            BeginOutcome::Pause { pp, .. } => pp,
            other => panic!("{other:?}"),
        };
        let old = match begin(&mut e, 2, 0, demand(10.0), t(100)) {
            BeginOutcome::Pause { pp, .. } => pp,
            other => panic!("{other:?}"),
        };
        // At t=1200 only the t=100 entry has waited ≥ 1000 cycles.
        let out = e.age_waitlist(t(1_200));
        assert_eq!(out.resumed, vec![(old, ProcessId(2))], "oldest-first");
        assert_eq!(e.waitlist_len(Resource::Llc), 1);
        // The younger entry ages out later, in its own turn.
        let out = e.age_waitlist(t(1_600));
        assert_eq!(out.resumed, vec![(young, ProcessId(1))]);
        assert_eq!(e.stats().aged_admissions, 2);
        e.check_invariants().unwrap();
    }

    #[test]
    fn snapshot_captures_observable_state() {
        let cfg = strict_cfg().with_waitlist_timeout_cycles(1_000);
        let mut e = ext_cfg(cfg);
        let a = must_run(&mut e, 0, 0, demand(14.0), t(0));
        let waiting = match begin(&mut e, 1, 1, demand(5.0), t(7)) {
            BeginOutcome::Pause { pp, .. } => pp,
            other => panic!("{other:?}"),
        };
        let s = e.snapshot();
        assert_eq!(s.usage[0], mb(14.0));
        assert_eq!(s.overflow, [0, 0]);
        assert_eq!(s.allocated, 2);
        assert_eq!(s.periods.len(), 2);
        assert!(s.periods[0].admitted && !s.periods[1].admitted);
        assert_eq!(s.waitlists[0].len(), 1);
        assert_eq!(s.waitlists[0][0].pp, waiting);
        assert_eq!(s.waitlists[0][0].enqueued_cycles, 7);
        assert_eq!(s.stats, e.stats());
        assert!(!s.is_idle());
        // Snapshots are pure reads: identical back-to-back.
        assert_eq!(s, e.snapshot());
        assert_eq!(s.digest(), e.snapshot().digest());
        // Draining everything returns the snapshot to idle.
        e.pp_end(a, t(10)).unwrap();
        e.pp_end(waiting, t(11)).unwrap();
        assert!(e.snapshot().is_idle());
    }

    #[test]
    fn aging_unblocks_fitting_periods_behind_the_head() {
        let cfg = strict_cfg().with_waitlist_timeout_cycles(1_000);
        let mut e = ext_cfg(cfg);
        // Saturate the cache with two periods (8 + 7 = 15 MB).
        let a = must_run(&mut e, 0, 0, demand(8.0), t(0));
        let _b = must_run(&mut e, 1, 0, demand(7.0), t(0));
        // Head: 12 MB. Behind it: 6 MB. Neither fits while saturated.
        let head = match begin(&mut e, 2, 0, demand(12.0), t(10)) {
            BeginOutcome::Pause { pp, .. } => pp,
            other => panic!("{other:?}"),
        };
        let small = match begin(&mut e, 3, 0, demand(6.0), t(20)) {
            BeginOutcome::Pause { pp, .. } => pp,
            other => panic!("{other:?}"),
        };
        // Ending the 8 MB period long after the timeout leaves 7 MB
        // used. The 12 MB head still does not fit (19 > 15) and without
        // aging would block the 6 MB entry (7 + 6 ≤ 15) forever. The
        // drain must age the head into the overflow bucket, then admit
        // the small entry nominally on the re-walk.
        let out = e.pp_end(a, t(5_000)).unwrap();
        assert_eq!(out.resumed, vec![(head, ProcessId(2)), (small, ProcessId(3))]);
        assert_eq!(e.stats().aged_admissions, 1, "only the head was aged");
        assert_eq!(e.stats().resumed, 1, "the small entry fit nominally");
        assert_eq!(e.usage(Resource::Llc), mb(13.0));
        assert_eq!(e.overflow_usage(Resource::Llc), mb(12.0));
        e.check_invariants().unwrap();
    }

    #[test]
    fn pp_end_drains_aged_heads_too() {
        // Aging must also fire on the pp_end path, not only on the
        // explicit age_waitlist timer.
        let cfg = strict_cfg().with_waitlist_timeout_cycles(1_000);
        let mut e = ext_cfg(cfg);
        let a = must_run(&mut e, 0, 0, demand(8.0), t(0));
        let b = must_run(&mut e, 1, 0, demand(7.0), t(0));
        let big = match begin(&mut e, 2, 0, demand(12.0), t(10)) {
            BeginOutcome::Pause { pp, .. } => pp,
            other => panic!("{other:?}"),
        };
        // Ending the 8 MB period at t=5_000 leaves 7 MB used; the
        // 12 MB head still does not fit nominally, but it expired long
        // ago, so the end must force-admit it.
        let out = e.pp_end(a, t(5_000)).unwrap();
        assert_eq!(out.resumed, vec![(big, ProcessId(2))]);
        assert_eq!(e.stats().aged_admissions, 1);
        e.check_invariants().unwrap();
        e.pp_end(big, t(6_000)).unwrap();
        e.pp_end(b, t(6_001)).unwrap();
        assert_eq!(e.usage(Resource::Llc), 0);
        assert_eq!(e.overflow_usage(Resource::Llc), 0);
    }

    #[test]
    fn resources_are_gated_independently() {
        // §3.3: "configurable to allow multiple hardware resources to
        // be targeted". A bandwidth-heavy period must not consume LLC
        // budget, and vice versa.
        let mut e = ext(PolicyKind::Strict);
        let bw_cap = e.config().membw_capacity;
        // Fill the LLC completely.
        let llc_pp = must_run(&mut e, 0, 0, demand(15.0), t(0));
        // A bandwidth demand still runs: different load-table row.
        let bw = PpDemand {
            resource: Resource::MemBandwidth,
            amount: bw_cap / 2,
            reuse: ReuseLevel::Low,
        };
        let bw_pp = must_run(&mut e, 1, 1, bw, t(1));
        assert_eq!(e.usage(Resource::MemBandwidth), bw_cap / 2);
        // Exceeding the bandwidth budget pauses on ITS waitlist only.
        let bw2 = PpDemand {
            resource: Resource::MemBandwidth,
            amount: bw_cap,
            reuse: ReuseLevel::Low,
        };
        assert!(matches!(
            begin(&mut e, 2, 2, bw2, t(2)),
            BeginOutcome::Pause { .. }
        ));
        assert_eq!(e.waitlist_len(Resource::MemBandwidth), 1);
        assert_eq!(e.waitlist_len(Resource::Llc), 0);
        // Releasing the LLC wakes nobody on the bandwidth list…
        let out = e.pp_end(llc_pp, t(3)).unwrap();
        assert!(out.resumed.is_empty());
        // …but releasing bandwidth does.
        let out = e.pp_end(bw_pp, t(4)).unwrap();
        assert_eq!(out.resumed.len(), 1);
        assert_eq!(out.resumed[0].1, ProcessId(2));
        e.check_invariants().unwrap();
    }

    #[test]
    fn call_costs_reflect_path() {
        let e = ext(PolicyKind::Strict);
        assert!(e.call_cost_cycles(true) < e.call_cost_cycles(false));
    }

    #[test]
    fn tracing_records_lifecycle_without_changing_state() {
        use rda_trace::{EventKind as K, TraceConfig};
        let mut traced = ext_cfg(strict_cfg().with_waitlist_timeout_cycles(1_000));
        traced.install_trace(TraceSink::new(TraceConfig::default()));
        let mut plain = ext_cfg(strict_cfg().with_waitlist_timeout_cycles(1_000));
        // Identical call sequence on both twins.
        for e in [&mut traced, &mut plain] {
            let a = must_run(e, 0, 0, demand(14.0), t(0));
            assert!(matches!(
                begin(e, 1, 0, demand(10.0), t(10)),
                BeginOutcome::Pause { .. }
            ));
            let _ = e.age_waitlist(t(2_000));
            e.pp_end(a, t(2_100)).unwrap();
            let _ = e.process_exit(ProcessId(1), t(2_200));
            assert!(e.pp_end(PpId(999), t(2_300)).is_err());
        }
        assert_eq!(
            traced.snapshot(),
            plain.snapshot(),
            "tracing must never perturb observable state"
        );
        assert_eq!(traced.fastpath_digest(), plain.fastpath_digest());

        let report = traced.take_trace().expect("sink installed").into_report();
        assert!(traced.trace().is_none(), "sink detached");
        let kinds: Vec<K> = report.events.iter().map(|e| e.kind).collect();
        for k in [K::Begin, K::Admit, K::Pause, K::Age, K::End, K::Exit, K::Reject] {
            assert!(kinds.contains(&k), "missing {k:?} in {kinds:?}");
        }
        assert_eq!(report.counts.begins, 2);
        assert_eq!(report.counts.aged, 1);
        assert_eq!(report.counts.rejects, 1);
        assert_eq!(report.wait.samples, 1);
        assert_eq!(report.wait.max, 1_990, "aged waiter enqueued at t=10, aged at t=2000");
    }

    #[test]
    fn untraced_extension_has_no_sink() {
        let mut e = ext(PolicyKind::Strict);
        assert!(e.trace().is_none());
        assert!(e.take_trace().is_none());
        let pp = must_run(&mut e, 0, 0, demand(1.0), t(0));
        e.pp_end(pp, t(1)).unwrap();
    }

    #[test]
    fn stats_track_activity() {
        let mut e = ext(PolicyKind::Strict);
        let pp = must_run(&mut e, 0, 0, demand(14.0), t(0));
        let _ = begin(&mut e, 1, 0, demand(5.0), t(1));
        let _ = e.pp_end(pp, t(2)).unwrap();
        let s = e.stats();
        assert_eq!(s.begins, 2);
        assert_eq!(s.ends, 1);
        assert_eq!(s.admitted, 1);
        assert_eq!(s.paused, 1);
        assert_eq!(s.resumed, 1);
        assert_eq!(s.max_waitlist, 1);
        assert_eq!(s.rejected_ends, 0);
        assert_eq!(s.reclaimed, 0);
    }

    /// White-box regression for the `pp_begin` desync path: a waitlist
    /// that already (impossibly) holds the id about to be allocated
    /// must produce a typed error and a rolled-back registration, not a
    /// panic.
    #[test]
    fn poisoned_waitlist_push_rolls_back_the_registration() {
        let mut e = ext(PolicyKind::Strict);
        // Fill the LLC so the next begin pauses (and therefore pushes).
        for p in 0..3 {
            must_run(&mut e, p, 0, demand(5.0), t(p as u64));
        }
        // Predict the id the next begin will allocate and pre-poison
        // the queue with it, simulating a desynchronized waitlist.
        let next = PpId(e.snapshot().allocated);
        e.waitlist
            .push(
                Resource::Llc,
                WaitEntry {
                    pp: next,
                    accounted: 1,
                    enqueued_at: t(0),
                },
            )
            .unwrap();
        let before = e.monitor.usage(Resource::Llc);
        let err = e
            .pp_begin(ProcessId(9), SiteId(7), demand(5.0), t(10))
            .unwrap_err();
        assert_eq!(err, RdaError::DoubleWaitlist(next));
        assert_eq!(e.stats().desyncs, 1);
        // The registration was rolled back: the id was burned but is
        // not live, accounting is untouched, and the poisoned entry was
        // not duplicated.
        assert!(e.registry.was_allocated(next));
        assert!(e.registry.get(next).is_none());
        assert_eq!(e.monitor.usage(Resource::Llc), before);
        assert_eq!(
            e.waitlist.iter(Resource::Llc).filter(|w| w.pp == next).count(),
            1
        );
        // The extension stays serviceable: an honest begin still works
        // (and pauses, since the cache is still full).
        assert!(matches!(
            begin(&mut e, 10, 8, demand(5.0), t(11)),
            BeginOutcome::Pause { .. }
        ));
    }

    /// The typed-error sweep leaves `desyncs` at zero for every healthy
    /// protocol violation — the counter only moves on internal bugs.
    #[test]
    fn protocol_violations_do_not_count_as_desyncs() {
        let mut e = ext(PolicyKind::Strict);
        let pp = must_run(&mut e, 0, 0, demand(5.0), t(0));
        e.pp_end(pp, t(1)).unwrap();
        assert_eq!(e.pp_end(pp, t(2)), Err(RdaError::DoubleEnd(pp)));
        assert_eq!(
            e.pp_end(PpId(999), t(3)),
            Err(RdaError::UnknownPp(PpId(999)))
        );
        e.process_exit(ProcessId(0), t(4));
        assert_eq!(e.stats().desyncs, 0);
        e.check_invariants().unwrap();
    }

    // ---- open-system overload control ----

    use crate::config::{BreakerConfig, OverloadConfig};

    fn overload_cfg(cap: usize, policy: ShedPolicy) -> OverloadConfig {
        OverloadConfig {
            waitlist_cap: cap,
            shed_policy: policy,
            deadline_cycles: None,
            breaker: None,
        }
    }

    #[test]
    fn reject_newest_sheds_at_the_cap_without_allocating() {
        let cfg = strict_cfg().with_overload(overload_cfg(1, ShedPolicy::RejectNewest));
        let mut e = ext_cfg(cfg);
        let _hog = must_run(&mut e, 0, 0, demand(14.0), t(0));
        assert!(matches!(
            begin(&mut e, 1, 0, demand(10.0), t(1)),
            BeginOutcome::Pause { shed: None, .. }
        ));
        let allocated_before = e.snapshot().allocated;
        assert_eq!(
            e.pp_begin(ProcessId(2), SiteId(0), demand(10.0), t(2)),
            Err(RdaError::WaitlistFull {
                resource: Resource::Llc
            })
        );
        assert_eq!(e.stats().shed, 1);
        assert_eq!(e.waitlist_len(Resource::Llc), 1, "queue stays at the cap");
        assert_eq!(
            e.snapshot().allocated,
            allocated_before,
            "tail drop allocates no id"
        );
        e.check_invariants().unwrap();
    }

    #[test]
    fn reject_oldest_evicts_the_longest_queued_waiter() {
        let cfg = strict_cfg().with_overload(overload_cfg(1, ShedPolicy::RejectOldest));
        let mut e = ext_cfg(cfg);
        let hog = must_run(&mut e, 0, 0, demand(14.0), t(0));
        let victim = match begin(&mut e, 1, 0, demand(10.0), t(1)) {
            BeginOutcome::Pause { pp, shed: None } => pp,
            other => panic!("{other:?}"),
        };
        let fresh = match begin(&mut e, 2, 0, demand(10.0), t(2)) {
            BeginOutcome::Pause { pp, shed } => {
                assert_eq!(shed, Some(victim), "head drop reports the victim");
                pp
            }
            other => panic!("{other:?}"),
        };
        assert_eq!(e.stats().shed, 1);
        assert_eq!(e.waitlist_len(Resource::Llc), 1);
        // The victim's period is gone for good; its end is a DoubleEnd.
        assert_eq!(e.pp_end(victim, t(3)), Err(RdaError::DoubleEnd(victim)));
        e.check_invariants().unwrap();
        // The fresh arrival is the one resumed when capacity frees.
        let out = e.pp_end(hog, t(4)).unwrap();
        assert_eq!(out.resumed, vec![(fresh, ProcessId(2))]);
        e.check_invariants().unwrap();
    }

    #[test]
    fn degrade_to_overflow_admits_into_the_degraded_bucket() {
        let cfg = strict_cfg().with_overload(overload_cfg(0, ShedPolicy::DegradeToOverflow));
        let mut e = ext_cfg(cfg);
        let _hog = must_run(&mut e, 0, 0, demand(14.0), t(0));
        let pp = match begin(&mut e, 1, 0, demand(10.0), t(1)) {
            BeginOutcome::Run { pp, fast } => {
                assert!(!fast);
                pp
            }
            other => panic!("expected degraded Run, got {other:?}"),
        };
        assert_eq!(e.overflow_usage(Resource::Llc), mb(10.0));
        assert_eq!(e.usage(Resource::Llc), mb(14.0), "nominal books untouched");
        assert_eq!(e.stats().shed, 1);
        assert_eq!(e.stats().admitted, 1, "only the hog counts as admitted");
        e.check_invariants().unwrap();
        e.pp_end(pp, t(2)).unwrap();
        assert_eq!(e.overflow_usage(Resource::Llc), 0);
        e.check_invariants().unwrap();
    }

    #[test]
    fn deadlines_expire_starved_waiters_on_age_ticks() {
        let mut ov = overload_cfg(64, ShedPolicy::RejectNewest);
        ov.deadline_cycles = Some(1_000);
        let cfg = strict_cfg().with_overload(ov);
        let mut e = ext_cfg(cfg);
        let _hog = must_run(&mut e, 0, 0, demand(14.0), t(0));
        let starved = match begin(&mut e, 1, 0, demand(10.0), t(10)) {
            BeginOutcome::Pause { pp, .. } => pp,
            other => panic!("{other:?}"),
        };
        // Inside the deadline nothing expires.
        assert_eq!(e.age_waitlist(t(500)), AgeOutcome::default());
        // Past it, the waiter is expired — completed, not admitted.
        let out = e.age_waitlist(t(1_020));
        assert_eq!(out.expired, vec![(starved, ProcessId(1))]);
        assert!(out.resumed.is_empty());
        assert_eq!(e.stats().expired, 1);
        assert_eq!(e.waitlist_len(Resource::Llc), 0);
        assert_eq!(e.usage(Resource::Llc), mb(14.0));
        assert_eq!(e.overflow_usage(Resource::Llc), 0);
        // Its id is burned: a late end is the usual DoubleEnd.
        assert_eq!(e.pp_end(starved, t(1_100)), Err(RdaError::DoubleEnd(starved)));
        e.check_invariants().unwrap();
    }

    #[test]
    fn expiring_a_blocking_head_admits_fitting_waiters_behind_it() {
        let mut ov = overload_cfg(64, ShedPolicy::RejectNewest);
        ov.deadline_cycles = Some(1_000);
        let cfg = strict_cfg().with_overload(ov);
        let mut e = ext_cfg(cfg);
        let _hog_a = must_run(&mut e, 0, 0, demand(10.0), t(0));
        let hog_b = must_run(&mut e, 1, 0, demand(4.0), t(1));
        // Usage 14/15: both arrivals park, FIFO head first.
        let head = match begin(&mut e, 2, 0, demand(10.0), t(10)) {
            BeginOutcome::Pause { pp, .. } => pp,
            other => panic!("{other:?}"),
        };
        let small = match begin(&mut e, 3, 0, demand(4.0), t(20)) {
            BeginOutcome::Pause { pp, .. } => pp,
            other => panic!("{other:?}"),
        };
        // Freeing 4 MB is not enough for the 10 MB head, so the drain
        // stalls on it and the fitting 4 MB entry stays queued behind.
        assert!(e.pp_end(hog_b, t(100)).unwrap().resumed.is_empty());
        assert_eq!(e.waitlist_len(Resource::Llc), 2);
        // Expiring the blocking head (enqueued t=10, deadline 1000)
        // lets the entry behind it (t=20, not yet expired) through.
        let out = e.age_waitlist(t(1_015));
        assert_eq!(out.expired, vec![(head, ProcessId(2))]);
        assert_eq!(out.resumed, vec![(small, ProcessId(3))]);
        assert_eq!(e.usage(Resource::Llc), mb(14.0));
        e.check_invariants().unwrap();
    }

    #[test]
    fn breaker_trips_with_hysteresis_and_sheds_the_demand_class() {
        let mut ov = overload_cfg(64, ShedPolicy::RejectNewest);
        ov.breaker = Some(BreakerConfig {
            high_water: mb(12.0),
            low_water: mb(6.0),
            trip_after: 2,
            recover_after: 2,
            shed_min_demand: mb(5.0),
        });
        let cfg = strict_cfg().with_overload(ov);
        let mut e = ext_cfg(cfg);
        let hog = must_run(&mut e, 0, 0, demand(14.0), t(0));
        // One tick above high water is not enough to trip.
        e.age_waitlist(t(100));
        assert!(!e.breaker_is_open(Resource::Llc));
        e.age_waitlist(t(200));
        assert!(e.breaker_is_open(Resource::Llc), "trips on the 2nd tick");
        assert_eq!(e.stats().breaker_trips, 1);
        // The expensive class is shed; small requests still pass.
        assert_eq!(
            e.pp_begin(ProcessId(1), SiteId(0), demand(6.0), t(210)),
            Err(RdaError::BreakerOpen {
                resource: Resource::Llc
            })
        );
        assert_eq!(e.stats().shed, 1);
        let small = must_run(&mut e, 2, 1, demand(0.5), t(220));
        // Capacity drains; recovery needs two consecutive low ticks.
        e.pp_end(hog, t(300)).unwrap();
        e.pp_end(small, t(301)).unwrap();
        e.age_waitlist(t(400));
        assert!(e.breaker_is_open(Resource::Llc), "one low tick is not enough");
        assert_eq!(
            e.pp_begin(ProcessId(3), SiteId(0), demand(6.0), t(410)),
            Err(RdaError::BreakerOpen {
                resource: Resource::Llc
            })
        );
        e.age_waitlist(t(500));
        assert!(!e.breaker_is_open(Resource::Llc), "resets after hysteresis");
        let _ = must_run(&mut e, 4, 0, demand(6.0), t(510));
        assert_eq!(e.stats().breaker_trips, 1, "no re-trip while drained");
        e.check_invariants().unwrap();
    }

    #[test]
    fn note_retry_counts_and_traces() {
        let cfg = strict_cfg().with_overload(overload_cfg(0, ShedPolicy::RejectNewest));
        let mut e = ext_cfg(cfg);
        e.install_trace(TraceSink::new(rda_trace::TraceConfig::default()));
        e.note_retry(ProcessId(7), SiteId(3), Resource::Llc, t(42));
        assert_eq!(e.stats().retried, 1);
        let sink = e.take_trace().unwrap();
        let report = sink.into_report();
        assert_eq!(report.counts.retried, 1);
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.events[0].kind, EventKind::Retry);
        assert_eq!(report.events[0].process, 7);
    }
}
