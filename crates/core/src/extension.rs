//! The progress monitor / scheduling extension (§3, Figures 2, 5, 6).
//!
//! [`RdaExtension`] is the component the simulation driver (and the
//! examples) talk to. It owns the registry, resource monitor, waitlist,
//! and fast-path cache, and implements the two workflows of Figures 5
//! and 6:
//!
//! * **`pp_begin`** — allocate a period id, evaluate the scheduling
//!   predicate (Algorithm 1), and either account the demand and let the
//!   process run, or waitlist it (the caller pauses the process's
//!   threads on the OS wait queue).
//! * **`pp_end`** — remove the period from the registry, release its
//!   demand from the resource monitor, then walk the waitlist FIFO
//!   admitting every period that now fits (the caller wakes those
//!   processes).
//!
//! Untracked processes are invisible here: *"Our system ignores
//! processes that have not provided progress period information, and
//! schedules them directly on the operating system."*

use crate::api::{PpDemand, PpId, Resource, SiteId};
use crate::config::RdaConfig;
use crate::fastpath::FastPathCache;
use crate::monitor::ResourceMonitor;
use crate::policy::PolicyKind;
use crate::predicate::{self, Decision};
use crate::registry::PpRegistry;
use crate::waitlist::{WaitEntry, Waitlist};
use rda_sched::ProcessId;
use rda_simcore::SimTime;

/// Activity counters of the extension.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RdaStats {
    /// `pp_begin` calls processed.
    pub begins: u64,
    /// `pp_end` calls processed.
    pub ends: u64,
    /// Periods admitted immediately at `pp_begin`.
    pub admitted: u64,
    /// Periods paused (waitlisted) at `pp_begin`.
    pub paused: u64,
    /// Periods later admitted from the waitlist.
    pub resumed: u64,
    /// `pp_begin` calls served by the fast path.
    pub fast_begins: u64,
    /// `pp_end` calls served by the fast path.
    pub fast_ends: u64,
    /// Largest waitlist length observed.
    pub max_waitlist: u64,
    /// Oversized demands admitted by the deadlock guard.
    pub oversized_admits: u64,
}

/// Outcome of a `pp_begin` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BeginOutcome {
    /// The policy is [`PolicyKind::DefaultOnly`]: the call is not
    /// tracked at all (models an unmodified application on the stock
    /// scheduler — zero overhead).
    Bypass,
    /// Admitted: the process keeps running. `fast` reports whether the
    /// memoised fast path served the call (cost accounting).
    Run {
        /// The allocated period id.
        pp: PpId,
        /// Whether the fast path served the call.
        fast: bool,
    },
    /// Denied: the caller must pause the process until the id is
    /// returned by a later [`RdaExtension::pp_end`].
    Pause {
        /// The allocated (waitlisted) period id.
        pp: PpId,
    },
}

/// Outcome of a `pp_end` call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndOutcome {
    /// Whether the fast path served the call.
    pub fast: bool,
    /// Waitlisted periods admitted by this completion; the caller must
    /// wake their processes.
    pub resumed: Vec<(PpId, ProcessId)>,
}

/// The RDA scheduling extension.
#[derive(Debug, Clone)]
pub struct RdaExtension {
    cfg: RdaConfig,
    registry: PpRegistry,
    monitor: ResourceMonitor,
    waitlist: Waitlist,
    fastpath: FastPathCache,
    stats: RdaStats,
}

impl RdaExtension {
    /// Build an extension with the given configuration.
    pub fn new(cfg: RdaConfig) -> Self {
        RdaExtension {
            monitor: ResourceMonitor::new(cfg.llc_capacity, cfg.membw_capacity),
            registry: PpRegistry::new(),
            waitlist: Waitlist::new(),
            fastpath: FastPathCache::new(),
            stats: RdaStats::default(),
            cfg,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &RdaConfig {
        &self.cfg
    }

    /// The active policy.
    pub fn policy(&self) -> PolicyKind {
        self.cfg.policy
    }

    /// Counters so far.
    pub fn stats(&self) -> RdaStats {
        self.stats
    }

    /// Current tracked usage of a resource.
    pub fn usage(&self, r: Resource) -> u64 {
        self.monitor.usage(r)
    }

    /// Iterate the admitted (running) periods.
    pub fn iter_admitted(&self) -> impl Iterator<Item = &crate::registry::PpRecord> {
        self.registry.iter().filter(|r| r.admitted)
    }

    /// Number of periods waiting on a resource.
    pub fn waitlist_len(&self, r: Resource) -> usize {
        self.waitlist.len(r)
    }

    /// Cycle cost of a call, by path (the simulation charges this to
    /// the calling thread).
    pub fn call_cost_cycles(&self, fast: bool) -> u64 {
        if fast {
            self.cfg.fast_call_cycles
        } else {
            self.cfg.slow_call_cycles
        }
    }

    /// Process a `pp_begin` from `process` at static site `site`.
    pub fn pp_begin(
        &mut self,
        process: ProcessId,
        site: SiteId,
        demand: PpDemand,
        now: SimTime,
    ) -> BeginOutcome {
        if !self.cfg.policy.is_gating() {
            return BeginOutcome::Bypass;
        }
        self.stats.begins += 1;
        let resource = demand.resource;
        let capacity = self.monitor.capacity(resource);
        let accounted = self.cfg.policy.effective_demand(demand.amount, capacity);

        // Fast path: repeat entry of a recently validated site while no
        // one is waitlisted ahead of us.
        if self.waitlist.len(resource) == 0
            && self.fastpath.try_admit(
                process,
                site,
                resource,
                demand.amount,
                self.monitor.usage(resource),
                now,
                self.cfg.min_eval_interval_cycles,
            )
        {
            self.monitor.increment_load(resource, accounted);
            let pp = self
                .registry
                .register(process, site, demand, accounted, true, now);
            self.stats.admitted += 1;
            self.stats.fast_begins += 1;
            return BeginOutcome::Run { pp, fast: true };
        }

        // Slow path: full Algorithm 1.
        match predicate::try_schedule(&demand, &self.monitor, &self.cfg.policy) {
            Decision::Run => {
                if accounted > self.cfg.policy.usage_limit(capacity) {
                    self.stats.oversized_admits += 1;
                }
                self.monitor.increment_load(resource, accounted);
                let pp = self
                    .registry
                    .register(process, site, demand, accounted, true, now);
                self.stats.admitted += 1;
                // Cache the verdict for repeats of this site.
                let threshold = self
                    .cfg
                    .policy
                    .usage_limit(capacity)
                    .saturating_sub(accounted);
                self.fastpath
                    .store_run(process, site, resource, demand.amount, threshold, now);
                BeginOutcome::Run { pp, fast: false }
            }
            Decision::Pause => {
                let pp = self
                    .registry
                    .register(process, site, demand, accounted, false, now);
                self.waitlist.push(resource, WaitEntry { pp, accounted });
                self.stats.paused += 1;
                self.stats.max_waitlist = self
                    .stats
                    .max_waitlist
                    .max(self.waitlist.len(resource) as u64);
                BeginOutcome::Pause { pp }
            }
        }
    }

    /// Process a `pp_end` for a period previously returned by
    /// [`Self::pp_begin`]. Returns the waitlisted periods this
    /// completion admitted.
    ///
    /// Panics if `pp` is not a live period (ending twice, or ending a
    /// waitlisted period, is an application bug the kernel would
    /// reject).
    pub fn pp_end(&mut self, pp: PpId, now: SimTime) -> EndOutcome {
        self.stats.ends += 1;
        let record = self
            .registry
            .complete(pp)
            .unwrap_or_else(|| panic!("{pp} ended but not live"));
        assert!(
            record.admitted,
            "{pp} ended while waitlisted — the process should be paused"
        );
        let resource = record.demand.resource;
        self.monitor.decrement_load(resource, record.accounted);

        // Fast path: nothing can be woken (no waiters) *and* the site
        // was validated recently, so the release is a shared-page
        // decrement with deferred registry cleanup.
        if self.waitlist.len(resource) == 0
            && self.fastpath.is_fresh(
                record.process,
                record.site,
                now,
                self.cfg.min_eval_interval_cycles,
            )
        {
            self.stats.fast_ends += 1;
            return EndOutcome {
                fast: true,
                resumed: Vec::new(),
            };
        }
        // Slow completion with no waiters: nothing to resume.
        if self.waitlist.len(resource) == 0 {
            return EndOutcome {
                fast: false,
                resumed: Vec::new(),
            };
        }

        // Walk the FIFO admitting while the head fits (Figure 6:
        // "attempt to schedule any waiting threads previously blocked
        // due to resource constraints").
        let mut resumed = Vec::new();
        while let Some(head) = self.waitlist.front(resource) {
            let rec = self
                .registry
                .get(head.pp)
                .expect("waitlisted period missing from registry");
            let decision = predicate::try_schedule(&rec.demand, &self.monitor, &self.cfg.policy);
            if decision != Decision::Run {
                break;
            }
            self.waitlist.pop(resource);
            self.monitor.increment_load(resource, head.accounted);
            let rec = self.registry.get_mut(head.pp).unwrap();
            rec.admitted = true;
            let process = rec.process;
            let site = rec.site;
            let amount = rec.demand.amount;
            let threshold = self
                .cfg
                .policy
                .usage_limit(self.monitor.capacity(resource))
                .saturating_sub(head.accounted);
            self.fastpath
                .store_run(process, site, resource, amount, threshold, now);
            self.stats.resumed += 1;
            resumed.push((head.pp, process));
        }
        EndOutcome {
            fast: false,
            resumed,
        }
    }

    /// Forget everything about a process: release its admitted periods,
    /// cancel its waitlisted ones, and drop its fast-path entries.
    /// Returns the periods admitted from the waitlist by the released
    /// capacity.
    pub fn cancel_process(&mut self, process: ProcessId, now: SimTime) -> Vec<(PpId, ProcessId)> {
        let live: Vec<PpId> = self
            .registry
            .iter()
            .filter(|r| r.process == process)
            .map(|r| r.id)
            .collect();
        let mut resumed = Vec::new();
        for pp in live {
            let rec = self.registry.complete(pp).unwrap();
            if rec.admitted {
                self.monitor
                    .decrement_load(rec.demand.resource, rec.accounted);
                // Releasing capacity may admit waiters.
                resumed.extend(self.drain_waitlist(rec.demand.resource, now));
            } else {
                self.waitlist.cancel(rec.demand.resource, pp);
            }
        }
        self.fastpath.invalidate_process(process);
        resumed
    }

    fn drain_waitlist(&mut self, resource: Resource, now: SimTime) -> Vec<(PpId, ProcessId)> {
        let mut resumed = Vec::new();
        while let Some(head) = self.waitlist.front(resource) {
            let rec = self.registry.get(head.pp).expect("waitlisted period missing");
            if predicate::try_schedule(&rec.demand, &self.monitor, &self.cfg.policy) != Decision::Run
            {
                break;
            }
            self.waitlist.pop(resource);
            self.monitor.increment_load(resource, head.accounted);
            let rec = self.registry.get_mut(head.pp).unwrap();
            rec.admitted = true;
            self.stats.resumed += 1;
            resumed.push((head.pp, rec.process));
        }
        let _ = now;
        resumed
    }

    /// Internal consistency: the monitor's usage equals the sum of
    /// accounted demands over admitted periods, per resource.
    pub fn check_invariants(&self) -> Result<(), String> {
        for r in Resource::ALL {
            let expected = self.registry.total_accounted(r);
            let actual = self.monitor.usage(r);
            if expected != actual {
                return Err(format!(
                    "{r}: monitor usage {actual} != registry accounted {expected}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::mb;
    use rda_machine::{MachineConfig, ReuseLevel};

    fn ext(policy: PolicyKind) -> RdaExtension {
        RdaExtension::new(RdaConfig::for_machine(
            &MachineConfig::xeon_e5_2420(),
            policy,
        ))
    }

    fn demand(ws_mb: f64) -> PpDemand {
        PpDemand::llc(mb(ws_mb), ReuseLevel::High)
    }

    fn t(cycles: u64) -> SimTime {
        SimTime::from_cycles(cycles)
    }

    #[test]
    fn default_only_bypasses_tracking() {
        let mut e = ext(PolicyKind::DefaultOnly);
        let out = e.pp_begin(ProcessId(0), SiteId(0), demand(100.0), t(0));
        assert_eq!(out, BeginOutcome::Bypass);
        assert_eq!(e.stats().begins, 0);
        assert_eq!(e.usage(Resource::Llc), 0);
    }

    #[test]
    fn strict_admits_until_full_then_pauses() {
        let mut e = ext(PolicyKind::Strict);
        // LLC is 15 MB; three 5 MB periods fit, the fourth pauses.
        let mut pps = Vec::new();
        for p in 0..3 {
            match e.pp_begin(ProcessId(p), SiteId(0), demand(5.0), t(p as u64)) {
                BeginOutcome::Run { pp, .. } => pps.push(pp),
                other => panic!("expected Run, got {other:?}"),
            }
        }
        let paused = match e.pp_begin(ProcessId(3), SiteId(0), demand(5.0), t(3)) {
            BeginOutcome::Pause { pp } => pp,
            other => panic!("expected Pause, got {other:?}"),
        };
        assert_eq!(e.waitlist_len(Resource::Llc), 1);
        e.check_invariants().unwrap();

        // Ending one admitted period resumes the waiter.
        let out = e.pp_end(pps[0], t(10));
        assert!(!out.fast);
        assert_eq!(out.resumed, vec![(paused, ProcessId(3))]);
        assert_eq!(e.waitlist_len(Resource::Llc), 0);
        e.check_invariants().unwrap();
    }

    #[test]
    fn compromise_allows_double_subscription() {
        let mut e = ext(PolicyKind::compromise_default());
        // 15 MB LLC, x=2 → 30 MB limit: five 6 MB periods admitted, the
        // sixth pauses.
        for p in 0..5 {
            assert!(matches!(
                e.pp_begin(ProcessId(p), SiteId(0), demand(6.0), t(p as u64)),
                BeginOutcome::Run { .. }
            ));
        }
        assert!(matches!(
            e.pp_begin(ProcessId(5), SiteId(0), demand(6.0), t(5)),
            BeginOutcome::Pause { .. }
        ));
    }

    #[test]
    fn end_with_empty_waitlist_is_fast() {
        let mut e = ext(PolicyKind::Strict);
        let pp = match e.pp_begin(ProcessId(0), SiteId(0), demand(1.0), t(0)) {
            BeginOutcome::Run { pp, .. } => pp,
            _ => panic!(),
        };
        let out = e.pp_end(pp, t(1));
        assert!(out.fast);
        assert!(out.resumed.is_empty());
        assert_eq!(e.stats().fast_ends, 1);
    }

    #[test]
    fn repeat_site_hits_fast_path() {
        let mut e = ext(PolicyKind::Strict);
        let interval = e.config().min_eval_interval_cycles;
        // First begin: slow.
        let pp = match e.pp_begin(ProcessId(0), SiteId(9), demand(2.0), t(0)) {
            BeginOutcome::Run { pp, fast } => {
                assert!(!fast);
                pp
            }
            _ => panic!(),
        };
        e.pp_end(pp, t(10));
        // Repeat within the interval: fast.
        match e.pp_begin(ProcessId(0), SiteId(9), demand(2.0), t(20)) {
            BeginOutcome::Run { pp, fast } => {
                assert!(fast);
                e.pp_end(pp, t(30));
            }
            _ => panic!(),
        }
        // Repeat after expiry: slow again.
        match e.pp_begin(ProcessId(0), SiteId(9), demand(2.0), t(30 + interval + 1)) {
            BeginOutcome::Run { fast, .. } => assert!(!fast),
            _ => panic!(),
        }
        assert_eq!(e.stats().fast_begins, 1);
    }

    #[test]
    fn fast_path_never_admits_what_predicate_would_deny() {
        let mut e = ext(PolicyKind::Strict);
        // Warm the cache with a 6 MB site.
        let pp = match e.pp_begin(ProcessId(0), SiteId(1), demand(6.0), t(0)) {
            BeginOutcome::Run { pp, .. } => pp,
            _ => panic!(),
        };
        e.pp_end(pp, t(1));
        // Fill the cache to 10 MB with another process.
        assert!(matches!(
            e.pp_begin(ProcessId(1), SiteId(2), demand(10.0), t(2)),
            BeginOutcome::Run { .. }
        ));
        // The cached 6 MB site no longer fits (10 + 6 > 15): the fast
        // check must fail and the slow predicate must pause it.
        assert!(matches!(
            e.pp_begin(ProcessId(0), SiteId(1), demand(6.0), t(3)),
            BeginOutcome::Pause { .. }
        ));
        e.check_invariants().unwrap();
    }

    #[test]
    fn waitlist_resume_is_fifo_and_cascading() {
        let mut e = ext(PolicyKind::Strict);
        let a = match e.pp_begin(ProcessId(0), SiteId(0), demand(14.0), t(0)) {
            BeginOutcome::Run { pp, .. } => pp,
            _ => panic!(),
        };
        // Three small periods queue up behind the big one.
        for p in 1..4 {
            assert!(matches!(
                e.pp_begin(ProcessId(p), SiteId(0), demand(4.0), t(p as u64)),
                BeginOutcome::Pause { .. }
            ));
        }
        // Ending the 14 MB period admits all three 4 MB waiters (12 < 15).
        let out = e.pp_end(a, t(10));
        assert_eq!(out.resumed.len(), 3);
        let procs: Vec<u32> = out.resumed.iter().map(|&(_, p)| p.0).collect();
        assert_eq!(procs, vec![1, 2, 3], "FIFO order");
        e.check_invariants().unwrap();
    }

    #[test]
    fn algorithm1_admits_fitting_demand_despite_waiters() {
        // Algorithm 1 has no waiter check: a new demand that fits runs
        // immediately even while a bigger period is waitlisted.
        let mut e = ext(PolicyKind::Strict);
        let a = match e.pp_begin(ProcessId(0), SiteId(0), demand(10.0), t(0)) {
            BeginOutcome::Run { pp, .. } => pp,
            _ => panic!(),
        };
        assert!(matches!(
            e.pp_begin(ProcessId(1), SiteId(0), demand(12.0), t(1)),
            BeginOutcome::Pause { .. }
        ));
        // 10 + 2 <= 15: admitted straight away, ahead of the waiter.
        assert!(matches!(
            e.pp_begin(ProcessId(2), SiteId(1), demand(2.0), t(2)),
            BeginOutcome::Run { .. }
        ));
        e.check_invariants().unwrap();
        // Ending the 10 MB period leaves 15-2=13 < 12+2... 12 fits in
        // 15-2=13, so the waiter resumes now.
        let out = e.pp_end(a, t(3));
        assert_eq!(out.resumed.len(), 1);
        assert_eq!(out.resumed[0].1, ProcessId(1));
        assert_eq!(e.waitlist_len(Resource::Llc), 0);
    }

    #[test]
    fn head_of_line_blocking_preserves_fifo() {
        let mut e = ext(PolicyKind::Strict);
        let a = match e.pp_begin(ProcessId(0), SiteId(0), demand(10.0), t(0)) {
            BeginOutcome::Run { pp, .. } => pp,
            _ => panic!(),
        };
        let b = match e.pp_begin(ProcessId(3), SiteId(0), demand(4.0), t(1)) {
            BeginOutcome::Run { pp, .. } => pp,
            _ => panic!(),
        };
        // Big waiter first, small waiter second (usage is 14 MB).
        assert!(matches!(
            e.pp_begin(ProcessId(1), SiteId(0), demand(12.0), t(2)),
            BeginOutcome::Pause { .. }
        ));
        assert!(matches!(
            e.pp_begin(ProcessId(2), SiteId(0), demand(2.0), t(3)),
            BeginOutcome::Pause { .. }
        ));
        // Ending the 4 MB period leaves 10 MB used, 5 MB free: the
        // 12 MB head doesn't fit, and the FIFO resume loop stops there —
        // the 2 MB waiter behind it stays queued even though it fits.
        let out = e.pp_end(b, t(4));
        assert!(out.resumed.is_empty());
        assert_eq!(e.waitlist_len(Resource::Llc), 2);
        let _ = a;
    }

    #[test]
    fn oversized_demand_admitted_with_guard() {
        let mut e = ext(PolicyKind::Strict);
        match e.pp_begin(ProcessId(0), SiteId(0), demand(20.0), t(0)) {
            BeginOutcome::Run { .. } => {}
            other => panic!("oversized demand must run, got {other:?}"),
        }
        assert_eq!(e.stats().oversized_admits, 1);
        e.check_invariants().unwrap();
    }

    #[test]
    fn cancel_process_releases_and_resumes() {
        let mut e = ext(PolicyKind::Strict);
        assert!(matches!(
            e.pp_begin(ProcessId(0), SiteId(0), demand(14.0), t(0)),
            BeginOutcome::Run { .. }
        ));
        assert!(matches!(
            e.pp_begin(ProcessId(1), SiteId(0), demand(5.0), t(1)),
            BeginOutcome::Pause { .. }
        ));
        let resumed = e.cancel_process(ProcessId(0), t(2));
        assert_eq!(resumed.len(), 1);
        assert_eq!(resumed[0].1, ProcessId(1));
        assert_eq!(e.usage(Resource::Llc), mb(5.0));
        e.check_invariants().unwrap();
    }

    #[test]
    fn resources_are_gated_independently() {
        // §3.3: "configurable to allow multiple hardware resources to
        // be targeted". A bandwidth-heavy period must not consume LLC
        // budget, and vice versa.
        let mut e = ext(PolicyKind::Strict);
        let bw_cap = e.config().membw_capacity;
        // Fill the LLC completely.
        let llc_pp = match e.pp_begin(ProcessId(0), SiteId(0), demand(15.0), t(0)) {
            BeginOutcome::Run { pp, .. } => pp,
            other => panic!("{other:?}"),
        };
        // A bandwidth demand still runs: different load-table row.
        let bw = PpDemand {
            resource: Resource::MemBandwidth,
            amount: bw_cap / 2,
            reuse: ReuseLevel::Low,
        };
        let bw_pp = match e.pp_begin(ProcessId(1), SiteId(1), bw, t(1)) {
            BeginOutcome::Run { pp, .. } => pp,
            other => panic!("bandwidth must be independent: {other:?}"),
        };
        assert_eq!(e.usage(Resource::MemBandwidth), bw_cap / 2);
        // Exceeding the bandwidth budget pauses on ITS waitlist only.
        let bw2 = PpDemand {
            resource: Resource::MemBandwidth,
            amount: bw_cap,
            reuse: ReuseLevel::Low,
        };
        assert!(matches!(
            e.pp_begin(ProcessId(2), SiteId(2), bw2, t(2)),
            BeginOutcome::Pause { .. }
        ));
        assert_eq!(e.waitlist_len(Resource::MemBandwidth), 1);
        assert_eq!(e.waitlist_len(Resource::Llc), 0);
        // Releasing the LLC wakes nobody on the bandwidth list…
        let out = e.pp_end(llc_pp, t(3));
        assert!(out.resumed.is_empty());
        // …but releasing bandwidth does.
        let out = e.pp_end(bw_pp, t(4));
        assert_eq!(out.resumed.len(), 1);
        assert_eq!(out.resumed[0].1, ProcessId(2));
        e.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn double_end_panics() {
        let mut e = ext(PolicyKind::Strict);
        let pp = match e.pp_begin(ProcessId(0), SiteId(0), demand(1.0), t(0)) {
            BeginOutcome::Run { pp, .. } => pp,
            _ => panic!(),
        };
        e.pp_end(pp, t(1));
        e.pp_end(pp, t(2));
    }

    #[test]
    fn call_costs_reflect_path() {
        let e = ext(PolicyKind::Strict);
        assert!(e.call_cost_cycles(true) < e.call_cost_cycles(false));
    }

    #[test]
    fn stats_track_activity() {
        let mut e = ext(PolicyKind::Strict);
        let pp = match e.pp_begin(ProcessId(0), SiteId(0), demand(14.0), t(0)) {
            BeginOutcome::Run { pp, .. } => pp,
            _ => panic!(),
        };
        let _ = e.pp_begin(ProcessId(1), SiteId(0), demand(5.0), t(1));
        let _ = e.pp_end(pp, t(2));
        let s = e.stats();
        assert_eq!(s.begins, 2);
        assert_eq!(s.ends, 1);
        assert_eq!(s.admitted, 1);
        assert_eq!(s.paused, 1);
        assert_eq!(s.resumed, 1);
        assert_eq!(s.max_waitlist, 1);
    }
}
