//! The progress-period registry (§3.1).
//!
//! *"The progress monitor stores all active progress period information
//! in a registry, so the resource usage footprint of each progress
//! period can be removed from our environment after the period
//! completes."* The registry maps live [`PpId`]s to their demand,
//! owning process, and static site, and allocates fresh ids.
//!
//! # Representation
//!
//! [`PpRegistry`] is a slab arena: records live in a dense `Vec` of
//! slots recycled through a free list, an id→slot index gives O(1)
//! lookup without hashing or tree walks (ids are sequential `u64`s),
//! and a separate sorted list of live ids preserves the deterministic
//! **id-order iteration** that waitlist re-admission, process
//! cancellation, and the snapshot/digest machinery all rely on. Because
//! ids are allocated monotonically, keeping that list sorted is a plain
//! `push`; only completion pays a binary-search removal.
//!
//! [`reference::BTreeRegistry`] preserves the previous
//! `BTreeMap`-backed implementation verbatim as a differential-testing
//! oracle: `tests/tests/differential.rs` drives both through arbitrary
//! schedules and demands identical observable state at every step.

use crate::api::{PpDemand, PpId, SiteId};
use rda_sched::ProcessId;
use rda_simcore::SimTime;

/// A live progress period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpRecord {
    /// The dynamic instance id.
    pub id: PpId,
    /// Owning process.
    pub process: ProcessId,
    /// Static code site this instance came from.
    pub site: SiteId,
    /// The declared demand.
    pub demand: PpDemand,
    /// When the period was registered.
    pub begun_at: SimTime,
    /// Demand amount actually accounted in the resource monitor (may be
    /// clamped by the Partitioned policy or the demand auditor).
    pub accounted: u64,
    /// Whether the period is admitted (running) or waitlisted.
    pub admitted: bool,
    /// Whether the period was force-admitted by waitlist aging and is
    /// accounted in the monitor's degraded overflow bucket rather than
    /// the nominal load table.
    pub overflow: bool,
}

/// Sentinel in the id→slot index for ids whose period has completed.
const GONE: u32 = u32::MAX;

/// Allocator + table of active progress periods.
#[derive(Debug, Clone, Default)]
pub struct PpRegistry {
    next_id: u64,
    /// Slot arena; a slot's contents are meaningful only while its
    /// index is referenced from `slot_of`.
    slots: Vec<PpRecord>,
    /// Recycled slot indices (LIFO).
    free: Vec<u32>,
    /// `slot_of[id]` = arena slot of a live id, or [`GONE`] once the
    /// period completed. Indexed by the sequential id value itself.
    slot_of: Vec<u32>,
    /// Live ids in ascending (creation) order. Monotone id allocation
    /// makes insertion a `push`; completion removes by binary search.
    live_ids: Vec<PpId>,
}

impl PpRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new period and return its unique id.
    #[allow(clippy::too_many_arguments)]
    pub fn register(
        &mut self,
        process: ProcessId,
        site: SiteId,
        demand: PpDemand,
        accounted: u64,
        admitted: bool,
        now: SimTime,
    ) -> PpId {
        let id = PpId(self.next_id);
        self.next_id += 1;
        let record = PpRecord {
            id,
            process,
            site,
            demand,
            begun_at: now,
            accounted,
            admitted,
            overflow: false,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = record;
                s
            }
            None => {
                self.slots.push(record);
                (self.slots.len() - 1) as u32
            }
        };
        debug_assert_eq!(self.slot_of.len() as u64, id.0);
        self.slot_of.push(slot);
        self.live_ids.push(id);
        id
    }

    /// Whether `id` was ever allocated by [`Self::register`] — used to
    /// tell a double end (allocated, since completed) from an end of an
    /// id that never existed.
    pub fn was_allocated(&self, id: PpId) -> bool {
        id.0 < self.next_id
    }

    /// Number of ids ever allocated (the next id to be handed out).
    pub fn allocated(&self) -> u64 {
        self.next_id
    }

    fn slot(&self, id: PpId) -> Option<usize> {
        match self.slot_of.get(id.0 as usize) {
            Some(&s) if s != GONE => Some(s as usize),
            _ => None,
        }
    }

    /// Look up a live period.
    pub fn get(&self, id: PpId) -> Option<&PpRecord> {
        self.slot(id).map(|s| &self.slots[s])
    }

    /// Mutable access to a live period (admission flips, clamping).
    pub fn get_mut(&mut self, id: PpId) -> Option<&mut PpRecord> {
        self.slot(id).map(|s| &mut self.slots[s])
    }

    /// Remove a completed period, returning its record.
    pub fn complete(&mut self, id: PpId) -> Option<PpRecord> {
        let slot = self.slot(id)?;
        self.slot_of[id.0 as usize] = GONE;
        self.free.push(slot as u32);
        let pos = self
            .live_ids
            .binary_search(&id)
            .expect("live slot implies a live-id entry");
        self.live_ids.remove(pos);
        Some(self.slots[slot])
    }

    /// Number of live periods (admitted + waitlisted).
    pub fn len(&self) -> usize {
        self.live_ids.len()
    }

    /// True when no periods are live.
    pub fn is_empty(&self) -> bool {
        self.live_ids.is_empty()
    }

    /// Iterate over live periods in id (creation) order.
    pub fn iter(&self) -> impl Iterator<Item = &PpRecord> {
        self.live_ids
            .iter()
            .map(move |id| &self.slots[self.slot_of[id.0 as usize] as usize])
    }

    /// The live *admitted* periods of one process.
    pub fn admitted_of_process(&self, p: ProcessId) -> impl Iterator<Item = &PpRecord> {
        self.iter().filter(move |r| r.process == p && r.admitted)
    }

    /// Sum of accounted demand across nominally admitted periods — must
    /// equal the resource monitor's usage (checked by the extension's
    /// invariant test).
    pub fn total_accounted(&self, resource: crate::api::Resource) -> u64 {
        self.iter()
            .filter(|r| r.admitted && !r.overflow && r.demand.resource == resource)
            .map(|r| r.accounted)
            .sum()
    }

    /// Sum of accounted demand across aged (overflow-admitted) periods —
    /// must equal the resource monitor's overflow bucket.
    pub fn total_overflow(&self, resource: crate::api::Resource) -> u64 {
        self.iter()
            .filter(|r| r.admitted && r.overflow && r.demand.resource == resource)
            .map(|r| r.accounted)
            .sum()
    }

    /// Number of live periods waiting (not admitted) on a resource —
    /// must equal that resource's waitlist length.
    pub fn waiting_on(&self, resource: crate::api::Resource) -> usize {
        self.iter()
            .filter(|r| !r.admitted && r.demand.resource == resource)
            .count()
    }

    /// All three per-resource audit aggregates — nominal accounted sum,
    /// overflow-bucket sum, and waiting count — computed in one pass
    /// over the live records. Equivalent to calling
    /// [`Self::total_accounted`], [`Self::total_overflow`], and
    /// [`Self::waiting_on`] per resource, but six times cheaper; the
    /// per-step paranoid invariant sweep runs on this.
    pub fn audit_sums(&self) -> AuditSums {
        let mut sums = AuditSums::default();
        for r in self.iter() {
            let i = match r.demand.resource {
                crate::api::Resource::Llc => 0,
                crate::api::Resource::MemBandwidth => 1,
            };
            if !r.admitted {
                sums.waiting[i] += 1;
            } else if r.overflow {
                sums.overflow[i] += r.accounted;
            } else {
                sums.accounted[i] += r.accounted;
            }
        }
        sums
    }
}

/// Per-resource registry aggregates (indexed by
/// [`crate::api::Resource::ALL`] order) from [`PpRegistry::audit_sums`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditSums {
    /// Sum of accounted demand over admitted, non-overflow periods.
    pub accounted: [u64; 2],
    /// Sum of accounted demand over aged (overflow-admitted) periods.
    pub overflow: [u64; 2],
    /// Count of live periods not admitted (waitlisted).
    pub waiting: [u64; 2],
}

/// The previous `BTreeMap`-backed registry, kept verbatim as the
/// reference model for differential testing of the slab arena. Not used
/// on any production path.
pub mod reference {
    use super::{PpDemand, PpId, PpRecord, ProcessId, SimTime, SiteId};
    use std::collections::BTreeMap;

    /// Allocator + table of active progress periods, backed by a
    /// `BTreeMap` whose key order *is* id order.
    #[derive(Debug, Clone, Default)]
    pub struct BTreeRegistry {
        next_id: u64,
        active: BTreeMap<PpId, PpRecord>,
    }

    impl BTreeRegistry {
        /// Empty registry.
        pub fn new() -> Self {
            Self::default()
        }

        /// Register a new period and return its unique id.
        #[allow(clippy::too_many_arguments)]
        pub fn register(
            &mut self,
            process: ProcessId,
            site: SiteId,
            demand: PpDemand,
            accounted: u64,
            admitted: bool,
            now: SimTime,
        ) -> PpId {
            let id = PpId(self.next_id);
            self.next_id += 1;
            self.active.insert(
                id,
                PpRecord {
                    id,
                    process,
                    site,
                    demand,
                    begun_at: now,
                    accounted,
                    admitted,
                    overflow: false,
                },
            );
            id
        }

        /// Whether `id` was ever allocated.
        pub fn was_allocated(&self, id: PpId) -> bool {
            id.0 < self.next_id
        }

        /// Number of ids ever allocated.
        pub fn allocated(&self) -> u64 {
            self.next_id
        }

        /// Look up a live period.
        pub fn get(&self, id: PpId) -> Option<&PpRecord> {
            self.active.get(&id)
        }

        /// Mutable access to a live period.
        pub fn get_mut(&mut self, id: PpId) -> Option<&mut PpRecord> {
            self.active.get_mut(&id)
        }

        /// Remove a completed period, returning its record.
        pub fn complete(&mut self, id: PpId) -> Option<PpRecord> {
            self.active.remove(&id)
        }

        /// Number of live periods.
        pub fn len(&self) -> usize {
            self.active.len()
        }

        /// True when no periods are live.
        pub fn is_empty(&self) -> bool {
            self.active.is_empty()
        }

        /// Iterate over live periods in id (creation) order.
        pub fn iter(&self) -> impl Iterator<Item = &PpRecord> {
            self.active.values()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{mb, Resource};
    use rda_machine::ReuseLevel;

    fn demand() -> PpDemand {
        PpDemand::llc(mb(1.0), ReuseLevel::High)
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let mut r = PpRegistry::new();
        let a = r.register(ProcessId(0), SiteId(0), demand(), mb(1.0), true, SimTime::ZERO);
        let b = r.register(ProcessId(0), SiteId(0), demand(), mb(1.0), true, SimTime::ZERO);
        assert!(a < b);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn complete_removes_and_returns() {
        let mut r = PpRegistry::new();
        let id = r.register(ProcessId(3), SiteId(1), demand(), mb(1.0), true, SimTime::ZERO);
        let rec = r.complete(id).unwrap();
        assert_eq!(rec.process, ProcessId(3));
        assert!(r.complete(id).is_none(), "double-complete returns None");
        assert!(r.is_empty());
    }

    #[test]
    fn per_process_filtering() {
        let mut r = PpRegistry::new();
        r.register(ProcessId(1), SiteId(0), demand(), mb(1.0), true, SimTime::ZERO);
        r.register(ProcessId(1), SiteId(1), demand(), mb(1.0), false, SimTime::ZERO);
        r.register(ProcessId(2), SiteId(0), demand(), mb(1.0), true, SimTime::ZERO);
        assert_eq!(r.admitted_of_process(ProcessId(1)).count(), 1);
        assert_eq!(r.admitted_of_process(ProcessId(2)).count(), 1);
        assert_eq!(r.admitted_of_process(ProcessId(9)).count(), 0);
    }

    #[test]
    fn total_accounted_counts_only_admitted() {
        let mut r = PpRegistry::new();
        r.register(ProcessId(1), SiteId(0), demand(), 100, true, SimTime::ZERO);
        r.register(ProcessId(2), SiteId(0), demand(), 200, false, SimTime::ZERO);
        r.register(ProcessId(3), SiteId(0), demand(), 300, true, SimTime::ZERO);
        assert_eq!(r.total_accounted(Resource::Llc), 400);
        assert_eq!(r.total_accounted(Resource::MemBandwidth), 0);
        assert_eq!(r.waiting_on(Resource::Llc), 1);
    }

    #[test]
    fn overflow_records_are_booked_separately() {
        let mut r = PpRegistry::new();
        let a = r.register(ProcessId(1), SiteId(0), demand(), 100, true, SimTime::ZERO);
        r.register(ProcessId(2), SiteId(0), demand(), 200, true, SimTime::ZERO);
        r.get_mut(a).unwrap().overflow = true;
        assert_eq!(r.total_accounted(Resource::Llc), 200);
        assert_eq!(r.total_overflow(Resource::Llc), 100);
    }

    #[test]
    fn allocation_history_distinguishes_unknown_from_completed() {
        let mut r = PpRegistry::new();
        let id = r.register(ProcessId(0), SiteId(0), demand(), 1, true, SimTime::ZERO);
        assert!(r.was_allocated(id));
        assert!(!r.was_allocated(PpId(id.0 + 1)));
        r.complete(id);
        // Completed ids stay "allocated" — a second end is a DoubleEnd,
        // not an UnknownPp.
        assert!(r.was_allocated(id));
    }

    #[test]
    fn slots_are_recycled_but_iteration_stays_in_id_order() {
        let mut r = PpRegistry::new();
        let ids: Vec<PpId> = (0..6)
            .map(|p| r.register(ProcessId(p), SiteId(0), demand(), 10, true, SimTime::ZERO))
            .collect();
        // Complete out of creation order, punching holes in the arena.
        r.complete(ids[3]).unwrap();
        r.complete(ids[0]).unwrap();
        r.complete(ids[4]).unwrap();
        // New registrations reuse freed slots…
        let g = r.register(ProcessId(9), SiteId(1), demand(), 10, false, SimTime::ZERO);
        let h = r.register(ProcessId(8), SiteId(2), demand(), 10, true, SimTime::ZERO);
        assert!(g > ids[5] && h > g, "ids stay monotone across recycling");
        // …yet iteration remains strictly ascending by id.
        let order: Vec<u64> = r.iter().map(|rec| rec.id.0).collect();
        assert_eq!(order, vec![1, 2, 5, g.0, h.0]);
        assert_eq!(r.len(), 5);
        // Lookups route through the recycled slots correctly.
        assert_eq!(r.get(g).unwrap().process, ProcessId(9));
        assert_eq!(r.get(h).unwrap().site, SiteId(2));
        assert!(r.get(ids[3]).is_none());
    }
}
