//! # rda-core
//!
//! The paper's primary contribution: a **resource-demand-aware (RDA)
//! scheduling extension** that sits on top of the default OS scheduler
//! and gates processes at **progress-period** boundaries.
//!
//! A progress period (PP) is a duration of execution with roughly
//! constant resource demand, announced by the application through the
//! user-level API of Figure 4:
//!
//! ```text
//! pp_id = pp_begin(RESOURCE_LLC, MB(6.3), REUSE_HIGH);
//! DGEMM(n, A, B, C);
//! pp_end(pp_id);
//! ```
//!
//! The extension consists of the three components of the paper's
//! Figure 2:
//!
//! * the **progress monitor** ([`extension::RdaExtension`] +
//!   [`registry::PpRegistry`] + [`waitlist::Waitlist`]) — tracks PP
//!   begin/end events, keeps the registry of active periods, and
//!   re-attempts waitlisted threads whenever a period completes;
//! * the **resource monitor** ([`monitor::ResourceMonitor`]) — a load
//!   table holding the summed demand per hardware resource;
//! * the **scheduling predicate** ([`predicate`]) — Algorithm 1, which
//!   decides run-or-pause from remaining capacity, the new demand, and a
//!   reconfigurable [`policy`] (RDA:Strict / RDA:Compromise).
//!
//! Beyond the paper's prose, [`fastpath`] implements the decision
//! memoisation that keeps fine-grained period tracking cheap (the
//! mechanism behind the sub-linear overhead growth of Figure 11), and
//! [`policy::PolicyKind::Partitioned`] prototypes the cache-partitioning
//! extension the paper lists as future work.
//!
//! The scalar extension manages one load table. [`topology`], [`layer`]
//! and [`topo`] generalize it to a machine *topology* — demand vectors
//! over per-NUMA-node resources, layered policies with capacity
//! guarantees, and deterministic node placement ([`topo::TopoExtension`],
//! DESIGN.md §9) — while the scalar engine keeps serving the paper's
//! single-socket experiments unchanged.

#![warn(missing_docs)]

pub mod api;
pub mod config;
pub mod error;
pub mod extension;
pub mod fastpath;
pub mod layer;
pub mod monitor;
pub mod policy;
pub mod predicate;
pub mod registry;
pub mod snapshot;
pub mod topo;
pub mod topology;
pub mod waitlist;

pub use api::{mb, PpDemand, PpId, Resource, SiteId};
pub use config::{BreakerConfig, DemandAudit, OverloadConfig, RdaConfig, ShedPolicy};
pub use error::{InvariantKind, RdaError};
pub use extension::{AgeOutcome, BeginOutcome, BeginRequest, EndOutcome, RdaExtension, RdaStats};
pub use layer::{LayerId, LayerSet, LayerSpec};
pub use policy::PolicyKind;
pub use predicate::Decision;
pub use snapshot::{PpSnap, Snapshot, WaitSnap};
pub use topo::{
    TopoConfig, TopoError, TopoExtension, TopoPpSnap, TopoRecord, TopoSnapshot, TopoWaitSnap,
};
pub use topology::{Demand, NodeId, ResourceKind, ResourceSpace, SpecError, TopoSpec, KIND_COUNT};
