//! The scheduling predicate — Algorithm 1 of the paper.
//!
//! ```text
//! function TrySchedule(pp, resource)
//!     remaining ← resource.capacity − resource.usage
//!     outcome   ← remaining − pp.demand
//!     runnable  ← apply_policy(outcome, resource)
//!     if runnable then
//!         increment_load(pp.demand)
//!         schedule(get_process(pp))
//!     else
//!         waitlist(pp)
//! ```
//!
//! This module implements the *decision* half (the pure function); the
//! load increment and waitlisting side effects live in
//! [`crate::extension`], which owns the mutable state.

use crate::api::PpDemand;
use crate::monitor::ResourceMonitor;
use crate::policy::PolicyKind;

/// Verdict of the predicate for one progress period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Admit: account the demand and let the OS schedule the process.
    Run,
    /// Deny: place the process on the resource waitlist.
    Pause,
}

/// Evaluate Algorithm 1 for a new period against the current load.
///
/// One guard beyond the paper's pseudocode: a demand that could *never*
/// be admitted (it exceeds the policy's usage limit even on an idle
/// resource) is admitted immediately rather than waitlisted forever —
/// pausing it could deadlock the workload, and running it degenerates
/// to the paper's stated scope ("individually, their working sets fit
/// within the capacity of the available caches").
pub fn try_schedule(demand: &PpDemand, monitor: &ResourceMonitor, policy: &PolicyKind) -> Decision {
    let capacity = monitor.capacity(demand.resource);
    let accounted = policy.effective_demand(demand.amount, capacity);
    let remaining = monitor.remaining_signed(demand.resource);
    decide(accounted, capacity, remaining, policy)
}

/// The decision core of Algorithm 1, on pre-resolved inputs: the
/// *accounted* demand (already policy-scaled by
/// [`PolicyKind::effective_demand`]), the resource's nominal capacity,
/// and its signed remaining space. Shared by [`try_schedule`], the
/// batched begin path (which reads capacity and usage once per batch
/// from a [`crate::monitor::LoadView`]), and the waitlist drain (whose
/// entries store their accounted demand, making the registry lookup per
/// probe unnecessary). All three therefore compute bit-identical
/// verdicts by construction.
pub fn decide(accounted: u64, capacity: u64, remaining: i128, policy: &PolicyKind) -> Decision {
    // Oversized-demand guard: admission can never succeed, so don't
    // deadlock the process.
    if accounted > policy.usage_limit(capacity) {
        return Decision::Run;
    }
    let outcome = remaining - accounted as i128;
    if policy.apply(outcome, capacity) {
        Decision::Run
    } else {
        Decision::Pause
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{mb, PpDemand, Resource};
    use rda_machine::ReuseLevel;

    fn monitor_with_usage(capacity: u64, usage: u64) -> ResourceMonitor {
        let mut m = ResourceMonitor::new(capacity, u64::MAX / 2);
        if usage > 0 {
            m.increment_load(Resource::Llc, usage);
        }
        m
    }

    fn llc(amount: u64) -> PpDemand {
        PpDemand::llc(amount, ReuseLevel::High)
    }

    #[test]
    fn strict_admits_until_capacity() {
        let m = monitor_with_usage(mb(15.0), mb(12.0));
        assert_eq!(
            try_schedule(&llc(mb(3.0)), &m, &PolicyKind::Strict),
            Decision::Run
        );
        assert_eq!(
            try_schedule(&llc(mb(3.1)), &m, &PolicyKind::Strict),
            Decision::Pause
        );
    }

    #[test]
    fn compromise_admits_to_twice_capacity() {
        let m = monitor_with_usage(mb(15.0), mb(20.0)); // already oversubscribed
        let p = PolicyKind::compromise_default();
        assert_eq!(try_schedule(&llc(mb(10.0)), &m, &p), Decision::Run);
        assert_eq!(try_schedule(&llc(mb(10.1)), &m, &p), Decision::Pause);
    }

    #[test]
    fn default_only_never_pauses() {
        let m = monitor_with_usage(mb(15.0), mb(1000.0));
        assert_eq!(
            try_schedule(&llc(mb(500.0)), &m, &PolicyKind::DefaultOnly),
            Decision::Run
        );
    }

    #[test]
    fn oversized_demand_is_admitted_not_deadlocked() {
        // A 20 MB streaming working set on a 15 MB LLC can never pass
        // the strict predicate; it must run anyway.
        let m = monitor_with_usage(mb(15.0), 0);
        assert_eq!(
            try_schedule(&llc(mb(20.0)), &m, &PolicyKind::Strict),
            Decision::Run
        );
        // But a fitting demand arriving when the cache is *full* still
        // pauses (it can be admitted later).
        let busy = monitor_with_usage(mb(15.0), mb(15.0));
        assert_eq!(
            try_schedule(&llc(mb(1.0)), &busy, &PolicyKind::Strict),
            Decision::Pause
        );
    }

    #[test]
    fn partitioned_clamps_then_admits() {
        // Quota 25% of 15 MB = 3.75 MB accounted for a 20 MB demand.
        let p = PolicyKind::Partitioned { quota_frac: 0.25 };
        let m = monitor_with_usage(mb(15.0), mb(12.0));
        assert_eq!(try_schedule(&llc(mb(20.0)), &m, &p), Decision::Pause);
        let idle = monitor_with_usage(mb(15.0), mb(11.0));
        assert_eq!(try_schedule(&llc(mb(20.0)), &idle, &p), Decision::Run);
    }

    #[test]
    fn zero_demand_always_runs() {
        let m = monitor_with_usage(mb(15.0), mb(15.0));
        assert_eq!(
            try_schedule(&llc(0), &m, &PolicyKind::Strict),
            Decision::Run
        );
    }

    #[test]
    fn exact_fit_is_admitted() {
        let m = monitor_with_usage(mb(15.0), mb(10.0));
        assert_eq!(
            try_schedule(&llc(mb(5.0)), &m, &PolicyKind::Strict),
            Decision::Run
        );
    }
}
