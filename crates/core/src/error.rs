//! Typed errors of the RDA extension.
//!
//! The paper's prototype assumes cooperative applications: every
//! `pp_begin` is matched by one `pp_end`, declared working sets are
//! truthful, and no process dies mid-period. A production scheduler
//! cannot — a stale or malicious hint must surface as a recoverable,
//! *typed* error the caller can count and degrade around, never as a
//! panic that takes the scheduler down with the misbehaving process.
//! [`RdaError`] is that vocabulary: every protocol violation the
//! extension can detect, with enough structure for fault accounting.

use crate::api::{PpId, Resource};
use std::fmt;

/// Which internal consistency check an [`RdaError::InvariantViolation`]
/// tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantKind {
    /// Monitor nominal usage differs from the registry's accounted sum
    /// over admitted, non-overflow periods.
    UsageMismatch,
    /// Monitor overflow-bucket usage differs from the registry's
    /// accounted sum over aged (overflow-admitted) periods.
    OverflowMismatch,
    /// A waitlist entry points at a period the registry does not hold.
    WaitlistRecordMissing,
    /// A waitlisted period is marked admitted in the registry.
    WaitlistAdmitted,
    /// Waitlist length differs from the registry's count of
    /// non-admitted periods on that resource.
    WaitlistCountMismatch,
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InvariantKind::UsageMismatch => "usage mismatch",
            InvariantKind::OverflowMismatch => "overflow-bucket mismatch",
            InvariantKind::WaitlistRecordMissing => "waitlist entry without registry record",
            InvariantKind::WaitlistAdmitted => "waitlisted period marked admitted",
            InvariantKind::WaitlistCountMismatch => "waitlist/registry count mismatch",
        };
        f.write_str(s)
    }
}

/// Everything that can go wrong inside the RDA extension.
///
/// The first four variants are *application protocol violations* — the
/// extension rejects the call, counts it, and keeps its own state
/// intact (graceful degradation). [`RdaError::DemandOverflow`] is an
/// *audit rejection* (a declared demand the configured
/// [`crate::config::DemandAudit`] refuses to account).
/// [`RdaError::InvariantViolation`] is the only variant that indicates
/// a bug in the extension itself rather than in the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdaError {
    /// `pp_end` named an id that was never allocated by `pp_begin`.
    UnknownPp(PpId),
    /// `pp_end` named a period that was already completed (or reclaimed
    /// when its process exited) — the classic leaked/duplicated-end bug.
    DoubleEnd(PpId),
    /// `pp_end` named a period that is still waitlisted; its process
    /// should be paused and cannot legally reach the end marker.
    EndWhileWaitlisted(PpId),
    /// A period was enqueued on a waitlist it already occupies; honoring
    /// it would double-release the demand on admission.
    DoubleWaitlist(PpId),
    /// A declared demand the auditor refused: larger than the resource
    /// itself (with [`crate::config::DemandAudit::Reject`]) or large
    /// enough to overflow the 64-bit load table.
    DemandOverflow {
        /// The resource the demand targeted.
        resource: Resource,
        /// The declared amount.
        declared: u64,
        /// The resource's nominal capacity.
        capacity: u64,
    },
    /// A waitlisted period outlived its configured deadline
    /// ([`crate::config::OverloadConfig::deadline_cycles`]) and was
    /// expired on an aging tick instead of ever being admitted.
    DeadlineExceeded(PpId),
    /// The bounded admission gate shed an arrival because the
    /// resource's waitlist is at
    /// [`crate::config::OverloadConfig::waitlist_cap`] (under
    /// [`crate::config::ShedPolicy::RejectNewest`], or
    /// `RejectOldest` with an empty queue). No period id was
    /// allocated; the caller may back off and retry.
    WaitlistFull {
        /// The resource whose waitlist is full.
        resource: Resource,
    },
    /// The saturation circuit breaker is open for this resource and the
    /// arrival's audited demand is at or above the configured shed
    /// class ([`crate::config::BreakerConfig::shed_min_demand`]). No
    /// period id was allocated; the caller may back off and retry.
    BreakerOpen {
        /// The resource whose breaker is open.
        resource: Resource,
    },
    /// The registry and another internal structure disagreed about a
    /// period's existence (e.g. a record vanished between a liveness
    /// check and its removal) — a scheduler bug, not an application
    /// bug. Returned instead of panicking so the caller can fail the
    /// one operation and keep the extension alive; the extension's
    /// observable accounting is left untouched.
    RegistryDesync(PpId),
    /// An internal consistency check failed — a scheduler bug, not an
    /// application bug.
    InvariantViolation {
        /// The resource whose books disagree.
        resource: Resource,
        /// Which check tripped.
        kind: InvariantKind,
        /// The value the registry implies.
        expected: u64,
        /// The value actually observed.
        actual: u64,
    },
}

impl fmt::Display for RdaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RdaError::UnknownPp(pp) => write!(f, "{pp} ended but was never begun"),
            RdaError::DoubleEnd(pp) => {
                write!(f, "{pp} ended twice (or after its process exited)")
            }
            RdaError::EndWhileWaitlisted(pp) => {
                write!(f, "{pp} ended while waitlisted — its process should be paused")
            }
            RdaError::DoubleWaitlist(pp) => write!(f, "{pp} double-waitlisted"),
            RdaError::DeadlineExceeded(pp) => {
                write!(f, "{pp} deadline exceeded while waitlisted")
            }
            RdaError::WaitlistFull { resource } => {
                write!(f, "{resource} waitlist full — arrival shed")
            }
            RdaError::BreakerOpen { resource } => {
                write!(f, "{resource} circuit breaker open — arrival shed")
            }
            RdaError::RegistryDesync(pp) => {
                write!(f, "{pp} registry record desynchronized — scheduler bug")
            }
            RdaError::DemandOverflow {
                resource,
                declared,
                capacity,
            } => write!(f, "{resource} demand {declared} rejected (capacity {capacity})"),
            RdaError::InvariantViolation {
                resource,
                kind,
                expected,
                actual,
            } => write!(
                f,
                "{resource}: {kind} — expected {expected}, actual {actual}"
            ),
        }
    }
}

impl std::error::Error for RdaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert_eq!(
            RdaError::UnknownPp(PpId(7)).to_string(),
            "pp#7 ended but was never begun"
        );
        assert_eq!(
            RdaError::DoubleEnd(PpId(3)).to_string(),
            "pp#3 ended twice (or after its process exited)"
        );
        assert_eq!(
            RdaError::DoubleWaitlist(PpId(1)).to_string(),
            "pp#1 double-waitlisted"
        );
        assert_eq!(
            RdaError::RegistryDesync(PpId(9)).to_string(),
            "pp#9 registry record desynchronized — scheduler bug"
        );
        assert_eq!(
            RdaError::DeadlineExceeded(PpId(4)).to_string(),
            "pp#4 deadline exceeded while waitlisted"
        );
        assert_eq!(
            RdaError::WaitlistFull {
                resource: Resource::Llc
            }
            .to_string(),
            "LLC waitlist full — arrival shed"
        );
        assert_eq!(
            RdaError::BreakerOpen {
                resource: Resource::MemBandwidth
            }
            .to_string(),
            "MemBW circuit breaker open — arrival shed"
        );
        let e = RdaError::DemandOverflow {
            resource: Resource::Llc,
            declared: 100,
            capacity: 10,
        };
        assert_eq!(e.to_string(), "LLC demand 100 rejected (capacity 10)");
        let v = RdaError::InvariantViolation {
            resource: Resource::Llc,
            kind: InvariantKind::UsageMismatch,
            expected: 5,
            actual: 6,
        };
        assert!(v.to_string().contains("usage mismatch"));
        assert!(v.to_string().contains("expected 5"));
    }

    #[test]
    fn errors_are_comparable_and_send() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RdaError>();
        assert_eq!(RdaError::UnknownPp(PpId(1)), RdaError::UnknownPp(PpId(1)));
        assert_ne!(RdaError::UnknownPp(PpId(1)), RdaError::DoubleEnd(PpId(1)));
    }
}
