//! Configuration of the RDA extension.

use crate::policy::PolicyKind;
use rda_machine::MachineConfig;

/// How declared demands are audited against the resource's nominal
/// capacity before accounting (the paper trusts applications; a
/// production scheduler cannot — a lying or buggy process declaring a
/// demand larger than the whole resource would otherwise park every
/// other tracked process until it exits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemandAudit {
    /// Account declared demands verbatim (the paper's behaviour). An
    /// impossible demand is still admitted by the deadlock guard, and
    /// its full declared amount occupies the load table until it ends.
    Trust,
    /// Account at most the resource's nominal capacity for any single
    /// period; clamped periods are counted in
    /// [`crate::extension::RdaStats::clamped`]. One liar can then hold
    /// at most one capacity's worth of the books.
    Clamp,
    /// Refuse to track a demand larger than the resource:
    /// `pp_begin` returns [`crate::error::RdaError::DemandOverflow`]
    /// and the caller schedules the process directly on the OS
    /// (the paper's escape hatch for untracked processes).
    Reject,
}

/// What the bounded-waitlist admission gate does with an arrival that
/// would push a resource's waitlist past
/// [`OverloadConfig::waitlist_cap`] (open-system overload control; the
/// paper's closed-system batch model never needed one — its waitlist
/// depth is bounded by the process count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Shed the arriving period: `pp_begin` returns
    /// [`crate::error::RdaError::WaitlistFull`] without allocating an
    /// id, and the caller may retry later (tail drop).
    RejectNewest,
    /// Evict the longest-queued waiter to make room for the arrival;
    /// the victim's period is completed with an error and reported via
    /// [`crate::extension::BeginOutcome::Pause::shed`] (head drop —
    /// fresh work is favoured because the oldest waiter has the least
    /// chance of meeting any deadline).
    RejectOldest,
    /// Admit the arrival immediately into the degraded overflow
    /// accounting bucket (invisible to the predicate), exactly like an
    /// aged force-admission: latency is protected at the price of
    /// nominal-isolation guarantees.
    DegradeToOverflow,
}

/// Saturation circuit breaker: when a resource's total occupancy
/// (nominal + overflow buckets) stays above `high_water` for
/// `trip_after` consecutive evaluation ticks, the breaker opens and
/// `pp_begin` sheds every arrival whose audited demand is at least
/// `shed_min_demand` with [`crate::error::RdaError::BreakerOpen`].
/// Recovery is hysteretic: the breaker resets only after occupancy has
/// stayed below `low_water` for `recover_after` consecutive ticks, so
/// it cannot flap on the boundary. Evaluated on every
/// [`crate::extension::RdaExtension::age_waitlist`] tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Occupancy (bytes; nominal + overflow) at or above which a tick
    /// counts toward tripping.
    pub high_water: u64,
    /// Occupancy strictly below which a tick counts toward recovery
    /// (must be ≤ `high_water` for sane hysteresis).
    pub low_water: u64,
    /// Consecutive high-occupancy ticks before the breaker opens.
    pub trip_after: u32,
    /// Consecutive low-occupancy ticks before an open breaker resets.
    pub recover_after: u32,
    /// Only arrivals with audited demand ≥ this are shed while open;
    /// smaller requests still pass (shed the expensive class first).
    pub shed_min_demand: u64,
}

/// Overload-control knobs layered on the waitlist: a bounded admission
/// gate with a pluggable [`ShedPolicy`], optional per-request deadlines
/// (expired waiters fail typed instead of waiting forever), and an
/// optional saturation [`BreakerConfig`]. `None` everywhere reproduces
/// the paper's unbounded, deadline-free behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadConfig {
    /// Maximum entries per resource waitlist before the gate sheds.
    pub waitlist_cap: usize,
    /// What to shed when the cap is hit.
    pub shed_policy: ShedPolicy,
    /// A waitlisted period older than this many cycles is expired on
    /// the next aging tick with
    /// [`crate::error::RdaError::DeadlineExceeded`] semantics (`None`
    /// disables deadlines).
    pub deadline_cycles: Option<u64>,
    /// The saturation circuit breaker (`None` disables it).
    pub breaker: Option<BreakerConfig>,
}

/// Tunables of the scheduling extension.
#[derive(Debug, Clone, PartialEq)]
pub struct RdaConfig {
    /// The active scheduling policy (§3.3).
    pub policy: PolicyKind,
    /// LLC capacity the resource monitor manages, bytes.
    pub llc_capacity: u64,
    /// Memory-bandwidth capacity, bytes/second (extension resource).
    pub membw_capacity: u64,
    /// Cost of a full (slow-path) `pp_begin`/`pp_end` call: syscall,
    /// registry update, predicate evaluation, possible waitlist scan —
    /// in cycles.
    pub slow_call_cycles: u64,
    /// Cost of a memoised fast-path call (user-level check against the
    /// shared decision page), in cycles.
    pub fast_call_cycles: u64,
    /// Minimum interval between full predicate evaluations for the same
    /// site; calls arriving sooner take the fast path when the cached
    /// decision is still valid (see [`crate::fastpath`]).
    pub min_eval_interval_cycles: u64,
    /// How declared demands are audited before accounting.
    pub demand_audit: DemandAudit,
    /// Waitlist aging: a period waiting this many cycles or longer is
    /// force-admitted under the degraded overflow accounting bucket,
    /// bounding worst-case wait (`None` disables aging — the paper's
    /// behaviour, where FIFO re-evaluation is the only way off the
    /// waitlist).
    pub waitlist_timeout_cycles: Option<u64>,
    /// Open-system overload control (bounded waitlist, deadlines,
    /// circuit breaker). `None` — the default — is the paper's
    /// unbounded closed-system behaviour.
    pub overload: Option<OverloadConfig>,
}

impl RdaConfig {
    /// Defaults bound to a machine: capacity from the machine's LLC and
    /// peak DRAM bandwidth; call costs calibrated against Figure 11
    /// (≈ 50 µs slow path — syscall + registry + predicate + possible
    /// waitlist scan and reschedule — ≈ 0.55 µs fast path, 250 µs
    /// re-evaluation interval at 1.9 GHz).
    pub fn for_machine(m: &MachineConfig, policy: PolicyKind) -> Self {
        let us = |micros: f64| (micros * 1e-6 * m.freq_hz).round() as u64;
        RdaConfig {
            policy,
            llc_capacity: m.llc_bytes,
            membw_capacity: m.dram_peak_bw as u64,
            slow_call_cycles: us(50.0),
            fast_call_cycles: us(0.55),
            min_eval_interval_cycles: us(250.0),
            demand_audit: DemandAudit::Trust,
            waitlist_timeout_cycles: None,
            overload: None,
        }
    }

    /// Use the given demand-audit mode.
    pub fn with_demand_audit(mut self, audit: DemandAudit) -> Self {
        self.demand_audit = audit;
        self
    }

    /// Enable waitlist aging with the given timeout in cycles.
    pub fn with_waitlist_timeout_cycles(mut self, cycles: u64) -> Self {
        self.waitlist_timeout_cycles = Some(cycles);
        self
    }

    /// Enable open-system overload control.
    pub fn with_overload(mut self, overload: OverloadConfig) -> Self {
        self.overload = Some(overload);
        self
    }

    /// Capacity of a resource under this configuration.
    pub fn capacity(&self, resource: crate::api::Resource) -> u64 {
        match resource {
            crate::api::Resource::Llc => self.llc_capacity,
            crate::api::Resource::MemBandwidth => self.membw_capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Resource;

    #[test]
    fn defaults_follow_machine() {
        let m = MachineConfig::xeon_e5_2420();
        let c = RdaConfig::for_machine(&m, PolicyKind::Strict);
        assert_eq!(c.llc_capacity, m.llc_bytes);
        assert_eq!(c.capacity(Resource::Llc), m.llc_bytes);
        assert_eq!(c.capacity(Resource::MemBandwidth), m.dram_peak_bw as u64);
        
        assert_eq!(c.slow_call_cycles, 95_000); // 50 us at 1.9 GHz
        assert!(c.fast_call_cycles < c.slow_call_cycles / 50);
        // The paper's trusting, aging-free behaviour is the default.
        assert_eq!(c.demand_audit, DemandAudit::Trust);
        assert_eq!(c.waitlist_timeout_cycles, None);
        assert_eq!(c.overload, None);
    }

    #[test]
    fn builders_set_robustness_knobs() {
        let m = MachineConfig::xeon_e5_2420();
        let c = RdaConfig::for_machine(&m, PolicyKind::Strict)
            .with_demand_audit(DemandAudit::Clamp)
            .with_waitlist_timeout_cycles(1_000);
        assert_eq!(c.demand_audit, DemandAudit::Clamp);
        assert_eq!(c.waitlist_timeout_cycles, Some(1_000));
    }

    #[test]
    fn overload_builder_sets_all_knobs() {
        let m = MachineConfig::xeon_e5_2420();
        let overload = OverloadConfig {
            waitlist_cap: 4,
            shed_policy: ShedPolicy::RejectOldest,
            deadline_cycles: Some(10_000),
            breaker: Some(BreakerConfig {
                high_water: 1 << 20,
                low_water: 1 << 19,
                trip_after: 3,
                recover_after: 2,
                shed_min_demand: 1 << 16,
            }),
        };
        let c = RdaConfig::for_machine(&m, PolicyKind::Strict).with_overload(overload);
        assert_eq!(c.overload, Some(overload));
        let b = c.overload.unwrap().breaker.unwrap();
        assert!(b.low_water <= b.high_water, "hysteresis band is ordered");
    }
}
