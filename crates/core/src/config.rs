//! Configuration of the RDA extension.

use crate::policy::PolicyKind;
use rda_machine::MachineConfig;

/// Tunables of the scheduling extension.
#[derive(Debug, Clone, PartialEq)]
pub struct RdaConfig {
    /// The active scheduling policy (§3.3).
    pub policy: PolicyKind,
    /// LLC capacity the resource monitor manages, bytes.
    pub llc_capacity: u64,
    /// Memory-bandwidth capacity, bytes/second (extension resource).
    pub membw_capacity: u64,
    /// Cost of a full (slow-path) `pp_begin`/`pp_end` call: syscall,
    /// registry update, predicate evaluation, possible waitlist scan —
    /// in cycles.
    pub slow_call_cycles: u64,
    /// Cost of a memoised fast-path call (user-level check against the
    /// shared decision page), in cycles.
    pub fast_call_cycles: u64,
    /// Minimum interval between full predicate evaluations for the same
    /// site; calls arriving sooner take the fast path when the cached
    /// decision is still valid (see [`crate::fastpath`]).
    pub min_eval_interval_cycles: u64,
}

impl RdaConfig {
    /// Defaults bound to a machine: capacity from the machine's LLC and
    /// peak DRAM bandwidth; call costs calibrated against Figure 11
    /// (≈ 50 µs slow path — syscall + registry + predicate + possible
    /// waitlist scan and reschedule — ≈ 0.55 µs fast path, 250 µs
    /// re-evaluation interval at 1.9 GHz).
    pub fn for_machine(m: &MachineConfig, policy: PolicyKind) -> Self {
        let us = |micros: f64| (micros * 1e-6 * m.freq_hz).round() as u64;
        RdaConfig {
            policy,
            llc_capacity: m.llc_bytes,
            membw_capacity: m.dram_peak_bw as u64,
            slow_call_cycles: us(50.0),
            fast_call_cycles: us(0.55),
            min_eval_interval_cycles: us(250.0),
        }
    }

    /// Capacity of a resource under this configuration.
    pub fn capacity(&self, resource: crate::api::Resource) -> u64 {
        match resource {
            crate::api::Resource::Llc => self.llc_capacity,
            crate::api::Resource::MemBandwidth => self.membw_capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Resource;

    #[test]
    fn defaults_follow_machine() {
        let m = MachineConfig::xeon_e5_2420();
        let c = RdaConfig::for_machine(&m, PolicyKind::Strict);
        assert_eq!(c.llc_capacity, m.llc_bytes);
        assert_eq!(c.capacity(Resource::Llc), m.llc_bytes);
        assert_eq!(c.capacity(Resource::MemBandwidth), m.dram_peak_bw as u64);
        
        assert_eq!(c.slow_call_cycles, 95_000); // 50 us at 1.9 GHz
        assert!(c.fast_call_cycles < c.slow_call_cycles / 50);
    }
}
