//! The resource monitor (§3.2).
//!
//! *"A table is used to keep track of the current load level for the
//! resources, where an entry is allocated to each resource to save its
//! current usage level."* [`ResourceMonitor`] is that table: per
//! resource it stores the nominal capacity and the summed demand of all
//! active progress periods, updated on every period entry/exit, and
//! answers the free-space queries the predicate needs.

//! Beyond the paper, each row carries a second, **overflow** bucket:
//! the summed demand of periods force-admitted by waitlist aging. It is
//! deliberately excluded from [`ResourceMonitor::usage`] (and therefore
//! from the scheduling predicate) — degraded admissions must not be
//! able to wedge the nominal books shut for well-behaved periods.
//!
//! The table is laid out struct-of-arrays: each column (capacity,
//! usage, overflow, epoch) is one small array indexed by
//! [`Resource::index`]. The batched admission path reads the whole
//! usage column in one [`ResourceMonitor::load_view`] call, decides a
//! batch of periods against the copy, and writes the net effect back
//! with [`ResourceMonitor::commit_loads`] — equivalent, increment by
//! increment, to the serial calls it replaces.

use crate::api::Resource;

const N: usize = Resource::ALL.len();

/// A one-read copy of the load table's predicate-visible columns, for
/// deciding a batch of same-tick admissions without re-reading the
/// table per period. Indexed by [`Resource::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadView {
    /// Nominal capacity per resource.
    pub capacity: [u64; N],
    /// Nominal usage per resource (excludes the overflow bucket, like
    /// [`ResourceMonitor::usage`]).
    pub usage: [u64; N],
}

/// Real-time estimation of hardware resource usage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceMonitor {
    capacity: [u64; N],
    usage: [u64; N],
    /// Demand admitted under degraded (aged / force-admitted)
    /// accounting; tracked separately so it never blocks the predicate.
    overflow: [u64; N],
    /// Monotone counter bumped on every usage change; the fast path
    /// uses it to detect staleness cheaply.
    epoch: [u64; N],
}

impl ResourceMonitor {
    /// Build a monitor with the given capacities.
    pub fn new(llc_capacity: u64, membw_capacity: u64) -> Self {
        ResourceMonitor {
            capacity: [llc_capacity, membw_capacity],
            usage: [0; N],
            overflow: [0; N],
            epoch: [0; N],
        }
    }

    /// Nominal capacity of a resource.
    pub fn capacity(&self, r: Resource) -> u64 {
        self.capacity[r.index()]
    }

    /// Current summed demand of active periods admitted under nominal
    /// accounting (excludes the overflow bucket).
    pub fn usage(&self, r: Resource) -> u64 {
        self.usage[r.index()]
    }

    /// Summed demand of periods force-admitted under degraded
    /// (overflow) accounting.
    pub fn overflow(&self, r: Resource) -> u64 {
        self.overflow[r.index()]
    }

    /// Nominal plus overflow demand — the real pressure on the
    /// hardware, for reporting (the predicate sees only [`Self::usage`]).
    pub fn total_usage(&self, r: Resource) -> u64 {
        let i = r.index();
        self.usage[i].saturating_add(self.overflow[i])
    }

    /// Unused nominal capacity (saturating at zero when oversubscribed).
    pub fn remaining(&self, r: Resource) -> u64 {
        let i = r.index();
        self.capacity[i].saturating_sub(self.usage[i])
    }

    /// Signed remaining capacity — negative when policies have allowed
    /// oversubscription.
    pub fn remaining_signed(&self, r: Resource) -> i128 {
        let i = r.index();
        self.capacity[i] as i128 - self.usage[i] as i128
    }

    /// Usage-change epoch (bumped on every increment/decrement).
    pub fn epoch(&self, r: Resource) -> u64 {
        self.epoch[r.index()]
    }

    /// One read of the predicate-visible columns, for batched decisions.
    pub fn load_view(&self) -> LoadView {
        LoadView {
            capacity: self.capacity,
            usage: self.usage,
        }
    }

    /// Write back the net effect of a decided batch: per resource,
    /// `added[i]` more nominal usage from `admits[i]` admissions. The
    /// epoch advances by the admission count, exactly as the same
    /// admissions issued one [`Self::increment_load`] at a time would
    /// have left it.
    pub fn commit_loads(&mut self, added: [u64; N], admits: [u64; N]) {
        for i in 0..N {
            self.usage[i] += added[i];
            self.epoch[i] += admits[i];
        }
    }

    /// Account a newly admitted period's demand.
    pub fn increment_load(&mut self, r: Resource, demand: u64) {
        let i = r.index();
        self.usage[i] += demand;
        self.epoch[i] += 1;
    }

    /// Release a completed period's demand.
    ///
    /// Panics if the release exceeds the tracked usage — that would mean
    /// the registry double-released a period, which is a scheduler bug.
    pub fn decrement_load(&mut self, r: Resource, demand: u64) {
        let i = r.index();
        assert!(
            self.usage[i] >= demand,
            "resource {r}: releasing {demand} with only {} in use",
            self.usage[i]
        );
        self.usage[i] -= demand;
        self.epoch[i] += 1;
    }

    /// Account a period force-admitted by waitlist aging in the
    /// degraded overflow bucket.
    pub fn increment_overflow(&mut self, r: Resource, demand: u64) {
        let i = r.index();
        self.overflow[i] += demand;
        self.epoch[i] += 1;
    }

    /// Release a completed overflow-admitted period's demand.
    ///
    /// Panics if the release exceeds the tracked overflow usage — that
    /// would mean a double release, which is a scheduler bug (the typed
    /// error paths in [`crate::extension`] make it unreachable).
    pub fn decrement_overflow(&mut self, r: Resource, demand: u64) {
        let i = r.index();
        assert!(
            self.overflow[i] >= demand,
            "resource {r}: releasing {demand} overflow with only {} in the bucket",
            self.overflow[i]
        );
        self.overflow[i] -= demand;
        self.epoch[i] += 1;
    }

    /// Oversubscription ratio `usage / capacity` (0 for idle).
    pub fn pressure(&self, r: Resource) -> f64 {
        let i = r.index();
        if self.capacity[i] == 0 {
            0.0
        } else {
            self.usage[i] as f64 / self.capacity[i] as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mon() -> ResourceMonitor {
        ResourceMonitor::new(1000, 5000)
    }

    #[test]
    fn starts_idle() {
        let m = mon();
        assert_eq!(m.usage(Resource::Llc), 0);
        assert_eq!(m.remaining(Resource::Llc), 1000);
        assert_eq!(m.capacity(Resource::MemBandwidth), 5000);
        assert_eq!(m.pressure(Resource::Llc), 0.0);
    }

    #[test]
    fn increments_and_decrements_are_exact() {
        let mut m = mon();
        m.increment_load(Resource::Llc, 400);
        m.increment_load(Resource::Llc, 300);
        assert_eq!(m.usage(Resource::Llc), 700);
        assert_eq!(m.remaining(Resource::Llc), 300);
        m.decrement_load(Resource::Llc, 400);
        assert_eq!(m.usage(Resource::Llc), 300);
    }

    #[test]
    fn resources_are_independent() {
        let mut m = mon();
        m.increment_load(Resource::Llc, 999);
        assert_eq!(m.usage(Resource::MemBandwidth), 0);
        m.increment_load(Resource::MemBandwidth, 100);
        assert_eq!(m.usage(Resource::Llc), 999);
    }

    #[test]
    fn oversubscription_saturates_unsigned_remaining() {
        let mut m = mon();
        m.increment_load(Resource::Llc, 1500);
        assert_eq!(m.remaining(Resource::Llc), 0);
        assert_eq!(m.remaining_signed(Resource::Llc), -500);
        assert!((m.pressure(Resource::Llc) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn epoch_bumps_on_every_change() {
        let mut m = mon();
        let e0 = m.epoch(Resource::Llc);
        m.increment_load(Resource::Llc, 1);
        let e1 = m.epoch(Resource::Llc);
        m.decrement_load(Resource::Llc, 1);
        let e2 = m.epoch(Resource::Llc);
        assert!(e0 < e1 && e1 < e2);
        // Other resource's epoch untouched.
        assert_eq!(m.epoch(Resource::MemBandwidth), 0);
    }

    #[test]
    #[should_panic(expected = "releasing")]
    fn double_release_is_a_bug() {
        let mut m = mon();
        m.increment_load(Resource::Llc, 10);
        m.decrement_load(Resource::Llc, 11);
    }

    #[test]
    fn overflow_bucket_is_invisible_to_the_predicate_view() {
        let mut m = mon();
        m.increment_load(Resource::Llc, 300);
        m.increment_overflow(Resource::Llc, 900);
        // Nominal accounting is untouched by degraded admissions…
        assert_eq!(m.usage(Resource::Llc), 300);
        assert_eq!(m.remaining(Resource::Llc), 700);
        // …but the real pressure is visible for reporting.
        assert_eq!(m.overflow(Resource::Llc), 900);
        assert_eq!(m.total_usage(Resource::Llc), 1200);
        m.decrement_overflow(Resource::Llc, 900);
        assert_eq!(m.total_usage(Resource::Llc), 300);
    }

    #[test]
    fn overflow_changes_bump_the_epoch() {
        let mut m = mon();
        let e0 = m.epoch(Resource::Llc);
        m.increment_overflow(Resource::Llc, 5);
        assert!(m.epoch(Resource::Llc) > e0);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_double_release_is_a_bug() {
        let mut m = mon();
        m.increment_overflow(Resource::Llc, 10);
        m.decrement_overflow(Resource::Llc, 11);
    }

    #[test]
    fn load_view_matches_the_accessors() {
        let mut m = mon();
        m.increment_load(Resource::Llc, 123);
        m.increment_load(Resource::MemBandwidth, 45);
        m.increment_overflow(Resource::Llc, 7); // invisible to the view
        let v = m.load_view();
        for r in Resource::ALL {
            assert_eq!(v.capacity[r.index()], m.capacity(r));
            assert_eq!(v.usage[r.index()], m.usage(r));
        }
    }

    #[test]
    fn commit_loads_is_equivalent_to_serial_increments() {
        let mut serial = mon();
        serial.increment_load(Resource::Llc, 10);
        serial.increment_load(Resource::Llc, 20);
        serial.increment_load(Resource::MemBandwidth, 5);

        let mut batched = mon();
        batched.commit_loads([30, 5], [2, 1]);
        assert_eq!(serial, batched);
        for r in Resource::ALL {
            assert_eq!(serial.epoch(r), batched.epoch(r));
        }
    }
}
