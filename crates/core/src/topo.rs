//! The topology-aware scheduling extension: demand *vectors* placed
//! onto NUMA *nodes* under *layered* policies.
//!
//! [`TopoExtension`] generalizes the scalar [`crate::RdaExtension`]
//! along three axes (DESIGN.md §9):
//!
//! * **Resources** — a period demands a [`Demand`] vector (LLC,
//!   memory bandwidth, DRAM capacity) instead of one scalar amount;
//!   the admission predicate must hold for *every* demanded component.
//! * **Nodes** — the machine is a [`TopoSpec`] of NUMA nodes, each
//!   with its own capacity table. Admission includes a *placement*
//!   step: among the feasible nodes, the least-occupied one wins
//!   (ties break to the lowest node id — fully deterministic).
//! * **Layers** — processes belong to [`crate::layer::LayerSet`]
//!   layers, each with its own [`PolicyKind`] and an optional per-node
//!   capacity guarantee that other layers' admissions cannot consume
//!   (see the formula in [`crate::layer`]).
//!
//! # Compatibility with the scalar engine
//!
//! On a 1-node topology with a trivial single layer and a
//! single-component demand stream, every rule above degenerates to the
//! paper's Algorithm 1: one node means placement is the identity, one
//! layer without guarantee means the reservation term is zero, and one
//! component means the vector predicate is the scalar predicate. The
//! differences that remain are deliberate and invisible to the
//! scheduling outcome: this engine has no memoised fast path (its
//! `fast_begins`/`fast_ends` counters stay zero) and keeps one mixed
//! FIFO per *node* rather than one per *resource* — identical queue
//! orders when only one resource is ever demanded.
//!
//! # Waitlists, aging, overload
//!
//! Waiters are pinned to the node chosen at enqueue time (least
//! occupied at that moment); each node owns one FIFO. The bounded
//! admission gate, deadlines, aging, and the saturation breaker all
//! operate per node — the breaker per node *and* resource kind.
//!
//! A released demand vector can span several resources, so every drain
//! is **node-granular**: reclaiming a record marks its node touched,
//! and the node drain re-evaluates every component of every waiter.
//! That is what makes multi-resource reclamation complete — a waiter
//! blocked only on memory bandwidth is resumed by the exit of a holder
//! that also held LLC (the multi-resource drain audit of DESIGN.md §9).

#![allow(clippy::needless_range_loop)] // node/layer loops index several per-node books at once

use crate::api::{PpId, SiteId};
use crate::config::{DemandAudit, OverloadConfig, ShedPolicy};
use crate::extension::{AgeOutcome, BeginOutcome, EndOutcome, RdaStats};
use crate::layer::{LayerId, LayerSet};
use crate::policy::PolicyKind;
use crate::topology::{Demand, NodeId, ResourceKind, ResourceSpace, TopoSpec, KIND_COUNT};
use rda_sched::ProcessId;
use rda_simcore::{Fnv1a64, SimTime};
use rda_trace::{EventKind, RejectKind, TraceEvent, TraceResource, TraceSink, NO_NODE};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Typed errors of the topology engine — the multi-node analogue of
/// [`crate::error::RdaError`], with node/kind payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoError {
    /// The demand auditor refused a component larger than any node
    /// offers, or accounting it would wrap the 64-bit books.
    DemandOverflow {
        /// The offending component.
        kind: ResourceKind,
        /// Its declared amount.
        declared: u64,
        /// The machine-wide maximum capacity for the kind.
        capacity: u64,
    },
    /// `pp_end` of an id that was never allocated.
    UnknownPp(PpId),
    /// `pp_end` of a period that already ended.
    DoubleEnd(PpId),
    /// `pp_end` of a period still parked on a waitlist.
    EndWhileWaitlisted(PpId),
    /// The bounded admission gate shed the arrival at the target
    /// node's waitlist cap.
    WaitlistFull {
        /// The node whose queue was full.
        node: NodeId,
    },
    /// Every node's breaker sheds this demand class.
    BreakerOpen {
        /// The first blocking node (scan order).
        node: NodeId,
        /// The first blocking kind on that node.
        kind: ResourceKind,
    },
    /// Internal books disagree with the record store — a scheduler
    /// bug, never an application bug.
    InvariantViolation {
        /// The node whose books diverged.
        node: NodeId,
        /// The resource kind.
        kind: ResourceKind,
        /// Which book diverged.
        what: &'static str,
        /// Recomputed value.
        expected: u64,
        /// Stored value.
        actual: u64,
    },
}

impl fmt::Display for TopoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TopoError::DemandOverflow {
                kind,
                declared,
                capacity,
            } => write!(
                f,
                "demand overflow: {declared} {kind} exceeds machine-wide capacity {capacity}"
            ),
            TopoError::UnknownPp(pp) => write!(f, "unknown progress period id {}", pp.0),
            TopoError::DoubleEnd(pp) => write!(f, "period {} already ended", pp.0),
            TopoError::EndWhileWaitlisted(pp) => {
                write!(f, "period {} is waitlisted and cannot end", pp.0)
            }
            TopoError::WaitlistFull { node } => write!(f, "waitlist full on {node}"),
            TopoError::BreakerOpen { node, kind } => {
                write!(f, "saturation breaker open on {node} for {kind}")
            }
            TopoError::InvariantViolation {
                node,
                kind,
                what,
                expected,
                actual,
            } => write!(
                f,
                "invariant violation on {node}/{kind}: {what} expected {expected} actual {actual}"
            ),
        }
    }
}

impl std::error::Error for TopoError {}

/// Configuration of the topology engine — the multi-node analogue of
/// [`crate::config::RdaConfig`]. The audit/aging/overload knobs are
/// shared with the scalar engine so one experiment grid drives both.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoConfig {
    /// Per-node capacity tables.
    pub spec: TopoSpec,
    /// Layers and the process → layer assignment.
    pub layers: LayerSet,
    /// How declared demand components are audited (against the
    /// machine-wide maximum capacity of each kind).
    pub demand_audit: DemandAudit,
    /// Waitlist aging timeout (`None` disables aging).
    pub waitlist_timeout_cycles: Option<u64>,
    /// Open-system overload control, applied per node.
    pub overload: Option<OverloadConfig>,
}

impl TopoConfig {
    /// A configuration with the paper's trusting, aging-free defaults.
    pub fn new(spec: TopoSpec, layers: LayerSet) -> Self {
        TopoConfig {
            spec,
            layers,
            demand_audit: DemandAudit::Trust,
            waitlist_timeout_cycles: None,
            overload: None,
        }
    }

    /// [`Self::new`], but rejecting malformed capacity tables (zero
    /// capacity for a constrained kind, empty topologies) with a typed
    /// [`SpecError`] instead of letting the engine silently skip the
    /// kind in placement scoring.
    pub fn validated(spec: TopoSpec, layers: LayerSet) -> Result<Self, crate::topology::SpecError> {
        spec.validate()?;
        Ok(Self::new(spec, layers))
    }

    /// The single-node, single-layer shape equivalent to a scalar
    /// [`crate::config::RdaConfig`]: same LLC and bandwidth
    /// capacities, an effectively unconstrained DRAM pool (the scalar
    /// engine does not track DRAM), and the same audit/aging/overload
    /// knobs.
    pub fn compat(cfg: &crate::config::RdaConfig) -> Self {
        TopoConfig {
            spec: TopoSpec::single(cfg.llc_capacity, cfg.membw_capacity, u64::MAX / 4),
            layers: LayerSet::single(cfg.policy),
            demand_audit: cfg.demand_audit,
            waitlist_timeout_cycles: cfg.waitlist_timeout_cycles,
            overload: cfg.overload,
        }
    }

    /// Use the given demand-audit mode.
    pub fn with_demand_audit(mut self, audit: DemandAudit) -> Self {
        self.demand_audit = audit;
        self
    }

    /// Enable waitlist aging with the given timeout in cycles.
    pub fn with_waitlist_timeout_cycles(mut self, cycles: u64) -> Self {
        self.waitlist_timeout_cycles = Some(cycles);
        self
    }

    /// Enable open-system overload control (per node).
    pub fn with_overload(mut self, overload: OverloadConfig) -> Self {
        self.overload = Some(overload);
        self
    }
}

/// One live period in the topology engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopoRecord {
    /// The period id.
    pub id: PpId,
    /// Owning process.
    pub process: ProcessId,
    /// Static site.
    pub site: SiteId,
    /// The layer the owning process belongs to.
    pub layer: LayerId,
    /// The node the period was placed on (waiters: pinned target).
    pub node: NodeId,
    /// Declared (post-audit) demand vector.
    pub declared: Demand,
    /// Vector actually accounted on the node.
    pub accounted: Demand,
    /// Running (`true`) or waitlisted (`false`).
    pub admitted: bool,
    /// Accounted in the degraded overflow bucket.
    pub overflow: bool,
    /// When `pp_begin` processed the period.
    pub begun_at: SimTime,
}

/// One waitlist entry (per-node FIFO).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TopoWaitEntry {
    pp: PpId,
    accounted: Demand,
    enqueued_at: SimTime,
}

/// One live period, as observable in a [`TopoSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopoPpSnap {
    /// The period id.
    pub id: PpId,
    /// Owning process.
    pub process: ProcessId,
    /// Static site.
    pub site: SiteId,
    /// The owning layer.
    pub layer: LayerId,
    /// The placed (or pinned) node.
    pub node: NodeId,
    /// Declared (post-audit) demand vector.
    pub declared: Demand,
    /// Accounted demand vector.
    pub accounted: Demand,
    /// Running or waitlisted.
    pub admitted: bool,
    /// In the overflow bucket.
    pub overflow: bool,
}

/// One waitlist entry, as observable in a [`TopoSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopoWaitSnap {
    /// The waiting period.
    pub pp: PpId,
    /// Its accounted demand vector.
    pub accounted: Demand,
    /// Enqueue time in cycles.
    pub enqueued_cycles: u64,
}

/// The complete observable state of a [`TopoExtension`] — what the
/// extended differential oracle compares after every replayed event.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TopoSnapshot {
    /// Nominal usage per node per kind.
    pub usage: Vec<[u64; KIND_COUNT]>,
    /// Overflow-bucket usage per node per kind.
    pub overflow: Vec<[u64; KIND_COUNT]>,
    /// Waitlist contents front-to-back per node.
    pub waitlists: Vec<Vec<TopoWaitSnap>>,
    /// Every live period, in id order.
    pub periods: Vec<TopoPpSnap>,
    /// Activity counters (fast-path counters always zero here).
    pub stats: RdaStats,
    /// Number of period ids ever allocated.
    pub allocated: u64,
}

impl TopoSnapshot {
    /// Platform-stable FNV-1a digest over every field (`desyncs`
    /// excluded, mirroring [`crate::snapshot::Snapshot::digest`]).
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a64::new();
        h.write_usize(self.usage.len());
        for n in 0..self.usage.len() {
            for i in 0..KIND_COUNT {
                h.write_u64(self.usage[n][i]).write_u64(self.overflow[n][i]);
            }
            h.write_usize(self.waitlists[n].len());
            for w in &self.waitlists[n] {
                h.write_u64(w.pp.0).write_u64(w.enqueued_cycles);
                for a in w.accounted.amounts {
                    h.write_u64(a);
                }
            }
        }
        h.write_usize(self.periods.len());
        for p in &self.periods {
            h.write_u64(p.id.0)
                .write_u64(p.process.0 as u64)
                .write_u64(p.site.0 as u64)
                .write_u64(p.layer.0 as u64)
                .write_u64(p.node.0 as u64)
                .write_u64(p.admitted as u64)
                .write_u64(p.overflow as u64);
            for a in p.declared.amounts {
                h.write_u64(a);
            }
            for a in p.accounted.amounts {
                h.write_u64(a);
            }
        }
        let s = &self.stats;
        for v in [
            s.begins,
            s.ends,
            s.admitted,
            s.paused,
            s.resumed,
            s.fast_begins,
            s.fast_ends,
            s.max_waitlist,
            s.oversized_admits,
            s.reclaimed,
            s.clamped,
            s.aged_admissions,
            s.rejected_ends,
            s.shed,
            s.expired,
            s.retried,
            s.breaker_trips,
        ] {
            h.write_u64(v);
        }
        h.write_u64(self.allocated);
        h.finish()
    }

    /// This snapshot with its activity counters zeroed.
    pub fn without_stats(&self) -> TopoSnapshot {
        TopoSnapshot {
            stats: RdaStats::default(),
            ..self.clone()
        }
    }

    /// True when every book on every node is zero, nothing waits, and
    /// no period is live — the drained-to-idle end state the recovery
    /// properties expect.
    pub fn is_idle(&self) -> bool {
        self.usage.iter().all(|u| u.iter().all(|&a| a == 0))
            && self.overflow.iter().all(|u| u.iter().all(|&a| a == 0))
            && self.waitlists.iter().all(|w| w.is_empty())
            && self.periods.is_empty()
    }
}

/// The topology-aware RDA scheduling extension.
#[derive(Debug, Clone)]
pub struct TopoExtension {
    cfg: TopoConfig,
    /// Nominal usage per node per kind (what the predicate sees).
    usage: Vec<[u64; KIND_COUNT]>,
    /// Degraded overflow bucket per node per kind.
    overflow: Vec<[u64; KIND_COUNT]>,
    /// Nominal usage split per layer (drives guarantee reservations).
    layer_usage: Vec<Vec<[u64; KIND_COUNT]>>,
    /// Live periods by id (BTreeMap: snapshots iterate in id order).
    records: BTreeMap<u64, TopoRecord>,
    next_id: u64,
    /// One FIFO per node; entries hold mixed demand vectors.
    waitlists: Vec<VecDeque<TopoWaitEntry>>,
    stats: RdaStats,
    sink: Option<TraceSink>,
    breaker_open: Vec<[bool; KIND_COUNT]>,
    breaker_above: Vec<[u32; KIND_COUNT]>,
    breaker_below: Vec<[u32; KIND_COUNT]>,
}

impl TopoExtension {
    /// Build an extension with the given configuration.
    pub fn new(cfg: TopoConfig) -> Self {
        let nodes = cfg.spec.node_count();
        assert!(nodes >= 1, "a topology needs at least one node");
        let layers = cfg.layers.len();
        TopoExtension {
            usage: vec![[0; KIND_COUNT]; nodes],
            overflow: vec![[0; KIND_COUNT]; nodes],
            layer_usage: vec![vec![[0; KIND_COUNT]; nodes]; layers],
            records: BTreeMap::new(),
            next_id: 0,
            waitlists: vec![VecDeque::new(); nodes],
            stats: RdaStats::default(),
            sink: None,
            breaker_open: vec![[false; KIND_COUNT]; nodes],
            breaker_above: vec![[0; KIND_COUNT]; nodes],
            breaker_below: vec![[0; KIND_COUNT]; nodes],
            cfg,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &TopoConfig {
        &self.cfg
    }

    /// Counters so far.
    pub fn stats(&self) -> RdaStats {
        self.stats
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.cfg.spec.node_count()
    }

    /// Nominal usage of a kind on a node.
    pub fn usage(&self, node: NodeId, k: ResourceKind) -> u64 {
        self.usage[node.0 as usize][k.index()]
    }

    /// Overflow-bucket usage of a kind on a node.
    pub fn overflow_usage(&self, node: NodeId, k: ResourceKind) -> u64 {
        self.overflow[node.0 as usize][k.index()]
    }

    /// Nominal usage one layer holds of a kind on a node.
    pub fn layer_usage(&self, layer: LayerId, node: NodeId, k: ResourceKind) -> u64 {
        self.layer_usage[layer.0 as usize][node.0 as usize][k.index()]
    }

    /// Number of periods waiting on a node.
    pub fn waitlist_len(&self, node: NodeId) -> usize {
        self.waitlists[node.0 as usize].len()
    }

    /// Number of live periods (admitted + waitlisted).
    pub fn live_periods(&self) -> usize {
        self.records.len()
    }

    /// Whether the saturation breaker is open for a kind on a node.
    pub fn breaker_is_open(&self, node: NodeId, k: ResourceKind) -> bool {
        self.breaker_open[node.0 as usize][k.index()]
    }

    /// Attach a trace sink; subsequent calls emit events into it.
    pub fn install_trace(&mut self, sink: TraceSink) {
        self.sink = Some(sink);
    }

    /// The attached trace sink, if any.
    pub fn trace(&self) -> Option<&TraceSink> {
        self.sink.as_ref()
    }

    /// Mutable access to the attached trace sink.
    pub fn trace_mut(&mut self) -> Option<&mut TraceSink> {
        self.sink.as_mut()
    }

    /// Detach the trace sink.
    pub fn take_trace(&mut self) -> Option<TraceSink> {
        self.sink.take()
    }

    fn trace_kind(k: ResourceKind) -> TraceResource {
        match k {
            ResourceKind::Llc => TraceResource::Llc,
            ResourceKind::MemBw => TraceResource::MemBandwidth,
            ResourceKind::DramCap => TraceResource::DramCap,
        }
    }

    /// The leading nonzero component of a vector, for single-slot
    /// trace-event payloads. Zero vectors report `(llc, 0)`.
    fn primary(d: &Demand) -> (TraceResource, u64) {
        match d.touched().next() {
            Some(k) => (Self::trace_kind(k), d.get(k)),
            None => (TraceResource::Llc, 0),
        }
    }

    #[inline]
    fn emit(&mut self, ev: TraceEvent) {
        if let Some(sink) = self.sink.as_mut() {
            sink.record(ev);
        }
    }

    /// Capacity other layers' guarantees reserve away from `layer` for
    /// kind `k` on node `n` (see the formula in [`crate::layer`]).
    fn reserved_by_others(&self, n: usize, k: ResourceKind, layer: LayerId) -> u64 {
        let mut reserved = 0u64;
        for (li, spec) in self.cfg.layers.layers.iter().enumerate() {
            if li as u32 == layer.0 {
                continue;
            }
            if let Some(g) = spec.guarantee {
                let unused = g.get(k).saturating_sub(self.layer_usage[li][n][k.index()]);
                reserved = reserved.saturating_add(unused);
            }
        }
        reserved
    }

    /// The vector to account on node `n` for an audited demand under
    /// `policy` (Partitioned clamps each component to its quota).
    fn accounted_on(&self, n: usize, audited: &Demand, policy: PolicyKind) -> Demand {
        let mut acc = Demand::ZERO;
        for k in ResourceKind::ALL {
            let cap = self.cfg.spec.caps[n][k.index()];
            acc = acc.with(k, policy.effective_demand(audited.get(k), cap));
        }
        acc
    }

    /// Whether node `n` can admit `acc` nominally for `layer` right
    /// now. `Err(kind)` reports that accounting the component would
    /// wrap the 64-bit book (the node is disqualified, not merely
    /// busy). A component above the policy's usage limit can never fit
    /// and is skipped — the same deadlock guard as the scalar
    /// predicate, per component.
    fn node_admittable(&self, n: usize, layer: LayerId, acc: &Demand) -> Result<bool, ResourceKind> {
        let policy = self.cfg.layers.spec(layer).policy;
        for k in ResourceKind::ALL {
            let a = acc.get(k);
            if a == 0 {
                continue;
            }
            let i = k.index();
            if self.usage[n][i].checked_add(a).is_none() {
                return Err(k);
            }
            let lim = policy.usage_limit(self.cfg.spec.caps[n][i]);
            if a > lim {
                continue;
            }
            let limit = lim.saturating_sub(self.reserved_by_others(n, k, layer));
            if self.usage[n][i] + a > limit {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Placement score of node `n` for a demand: the worst relative
    /// occupancy (nominal + overflow, scaled by `2^32 / capacity`)
    /// over the demanded kinds. Lower is better; u128 keeps the scale
    /// exact for any u64 capacity.
    fn occupancy_score(&self, n: usize, demand: &Demand) -> u128 {
        let mut score = 0u128;
        for k in demand.touched() {
            let i = k.index();
            let cap = self.cfg.spec.caps[n][i];
            if cap == 0 {
                continue;
            }
            let occ = self.usage[n][i] as u128 + self.overflow[n][i] as u128;
            score = score.max((occ << 32) / cap as u128);
        }
        score
    }

    #[allow(clippy::too_many_arguments)]
    fn register(
        &mut self,
        process: ProcessId,
        site: SiteId,
        layer: LayerId,
        node: NodeId,
        declared: Demand,
        accounted: Demand,
        admitted: bool,
        overflow: bool,
        now: SimTime,
    ) -> PpId {
        let id = PpId(self.next_id);
        self.next_id += 1;
        self.records.insert(
            id.0,
            TopoRecord {
                id,
                process,
                site,
                layer,
                node,
                declared,
                accounted,
                admitted,
                overflow,
                begun_at: now,
            },
        );
        id
    }

    /// Add `acc` to node `n`'s nominal books for `layer`. Checked
    /// two-pass: if any component would wrap the usage book *or* the
    /// per-layer ledger, nothing is added and the wrapping kind is
    /// returned — the caller converts it into a typed
    /// [`TopoError::DemandOverflow`] rejection.
    fn account_nominal(&mut self, n: usize, layer: LayerId, acc: &Demand) -> Result<(), ResourceKind> {
        let li = layer.0 as usize;
        for k in ResourceKind::ALL {
            let i = k.index();
            let a = acc.get(k);
            if self.usage[n][i].checked_add(a).is_none()
                || self.layer_usage[li][n][i].checked_add(a).is_none()
            {
                return Err(k);
            }
        }
        for k in ResourceKind::ALL {
            let i = k.index();
            self.usage[n][i] += acc.get(k);
            self.layer_usage[li][n][i] += acc.get(k);
        }
        Ok(())
    }

    /// Add `acc` to node `n`'s degraded overflow bucket. Checked like
    /// [`Self::account_nominal`]: the bucket has no release pressure
    /// from the predicate, so it is the one book that can genuinely
    /// approach `u64::MAX` under sustained degraded admission.
    fn account_overflow(&mut self, n: usize, acc: &Demand) -> Result<(), ResourceKind> {
        for k in ResourceKind::ALL {
            if self.overflow[n][k.index()].checked_add(acc.get(k)).is_none() {
                return Err(k);
            }
        }
        for k in ResourceKind::ALL {
            self.overflow[n][k.index()] += acc.get(k);
        }
        Ok(())
    }

    /// Release a completed or reclaimed record's vector from the
    /// matching bucket on its node.
    fn release(&mut self, rec: &TopoRecord) {
        let n = rec.node.0 as usize;
        for k in ResourceKind::ALL {
            let i = k.index();
            let a = rec.accounted.get(k);
            if rec.overflow {
                self.overflow[n][i] -= a;
            } else {
                self.usage[n][i] -= a;
                self.layer_usage[rec.layer.0 as usize][n][i] -= a;
            }
        }
    }

    /// Process a `pp_begin` from `process` at static site `site`,
    /// demanding the vector `demand`.
    ///
    /// The process's layer decides the gating policy; placement picks
    /// the least-occupied feasible node; infeasible arrivals are
    /// pinned to the least-occupied node's waitlist (subject to the
    /// per-node overload gate).
    pub fn pp_begin(
        &mut self,
        process: ProcessId,
        site: SiteId,
        demand: Demand,
        now: SimTime,
    ) -> Result<BeginOutcome, TopoError> {
        let layer = self.cfg.layers.layer_of(process.0);
        let policy = self.cfg.layers.spec(layer).policy;
        if !policy.is_gating() {
            return Ok(BeginOutcome::Bypass);
        }
        self.stats.begins += 1;
        let (pres, pamt) = Self::primary(&demand);
        let mut ev = TraceEvent::at(now.cycles(), EventKind::Begin);
        ev.node = NO_NODE;
        ev.process = process.0;
        ev.site = site.0;
        ev.resource = pres;
        ev.amount = pamt;
        self.emit(ev);

        // Demand audit, per component, against the machine-wide
        // maximum capacity of the kind: a demand no node could ever
        // hold nominally is impossible, whatever the placement.
        let mut audited = demand;
        let mut clamped = false;
        for k in ResourceKind::ALL {
            let a = demand.get(k);
            let capmax = self.cfg.spec.max_capacity(k);
            if a <= capmax {
                continue;
            }
            match self.cfg.demand_audit {
                DemandAudit::Trust => {}
                DemandAudit::Clamp => {
                    audited = audited.with(k, capmax);
                    clamped = true;
                }
                DemandAudit::Reject => {
                    self.stats.clamped += 1;
                    ev.kind = EventKind::Reject;
                    ev.reject = RejectKind::DemandOverflow;
                    self.emit(ev);
                    return Err(TopoError::DemandOverflow {
                        kind: k,
                        declared: a,
                        capacity: capmax,
                    });
                }
            }
        }
        if clamped {
            self.stats.clamped += 1;
        }

        // Saturation breakers exclude nodes from placement; when every
        // node sheds this demand class the arrival is shed outright.
        let nodes = self.node_count();
        let mut eligible = vec![true; nodes];
        if let Some(b) = self.cfg.overload.and_then(|o| o.breaker) {
            let mut first_block = None;
            for n in 0..nodes {
                for k in ResourceKind::ALL {
                    if self.breaker_open[n][k.index()] && audited.get(k) >= b.shed_min_demand {
                        eligible[n] = false;
                        if first_block.is_none() {
                            first_block = Some((NodeId(n as u32), k));
                        }
                    }
                }
            }
            if eligible.iter().all(|&e| !e) {
                // All-blocked implies the scan recorded a blocker; if
                // the books disagree, count the desync and shed with a
                // neutral attribution rather than panic.
                let (node, kind) = match first_block {
                    Some(b) => b,
                    None => {
                        self.stats.desyncs += 1;
                        (NodeId(0), ResourceKind::ALL[0])
                    }
                };
                self.stats.shed += 1;
                ev.kind = EventKind::Shed;
                ev.reject = RejectKind::BreakerOpen;
                self.emit(ev);
                return Err(TopoError::BreakerOpen { node, kind });
            }
        }

        // Placement: least-occupied feasible node, ties to the lowest
        // id. Nodes whose books would wrap are disqualified; if every
        // eligible node wraps, the demand is impossible to account.
        let mut best: Option<(u128, usize)> = None;
        let mut all_wrap = true;
        let mut wrap_kind = None;
        for n in 0..nodes {
            if !eligible[n] {
                continue;
            }
            let acc = self.accounted_on(n, &audited, policy);
            match self.node_admittable(n, layer, &acc) {
                Err(k) => {
                    if wrap_kind.is_none() {
                        wrap_kind = Some(k);
                    }
                }
                Ok(feasible) => {
                    all_wrap = false;
                    if feasible {
                        let score = self.occupancy_score(n, &audited);
                        if best.is_none_or(|(s, _)| score < s) {
                            best = Some((score, n));
                        }
                    }
                }
            }
        }
        if all_wrap {
            // At least one eligible node survived the breaker gate, so
            // all-wrap implies a recorded kind; desync-tolerate anyway.
            let k = match wrap_kind {
                Some(k) => k,
                None => {
                    self.stats.desyncs += 1;
                    ResourceKind::ALL[0]
                }
            };
            self.stats.clamped += 1;
            ev.kind = EventKind::Reject;
            ev.reject = RejectKind::DemandOverflow;
            self.emit(ev);
            return Err(TopoError::DemandOverflow {
                kind: k,
                declared: audited.get(k),
                capacity: self.cfg.spec.max_capacity(k),
            });
        }

        if let Some((_, n)) = best {
            let acc = self.accounted_on(n, &audited, policy);
            if acc
                .touched()
                .any(|k| acc.get(k) > policy.usage_limit(self.cfg.spec.caps[n][k.index()]))
            {
                self.stats.oversized_admits += 1;
            }
            if let Err(k) = self.account_nominal(n, layer, &acc) {
                self.stats.clamped += 1;
                ev.kind = EventKind::Reject;
                ev.reject = RejectKind::DemandOverflow;
                self.emit(ev);
                return Err(TopoError::DemandOverflow {
                    kind: k,
                    declared: acc.get(k),
                    capacity: self.cfg.spec.max_capacity(k),
                });
            }
            let pp = self.register(
                process,
                site,
                layer,
                NodeId(n as u32),
                audited,
                acc,
                true,
                false,
                now,
            );
            self.stats.admitted += 1;
            ev.kind = EventKind::Admit;
            ev.node = n as u32;
            ev.pp = pp.0;
            let (r, a) = Self::primary(&acc);
            ev.resource = r;
            ev.amount = a;
            self.emit(ev);
            return Ok(BeginOutcome::Run { pp, fast: false });
        }

        // No node fits: pin the arrival to the least-occupied eligible
        // node's waitlist, behind that node's overload gate.
        let Some(target) = (0..nodes)
            .filter(|&n| eligible[n])
            .min_by_key(|&n| (self.occupancy_score(n, &audited), n))
        else {
            // Unreachable when the books are sound (the all-blocked
            // case returned above); shed instead of panicking.
            self.stats.desyncs += 1;
            self.stats.shed += 1;
            ev.kind = EventKind::Shed;
            ev.reject = RejectKind::BreakerOpen;
            self.emit(ev);
            return Err(TopoError::BreakerOpen {
                node: NodeId(0),
                kind: ResourceKind::ALL[0],
            });
        };
        let acc = self.accounted_on(target, &audited, policy);
        let mut shed_victim = None;
        if let Some(ov) = self.cfg.overload {
            if self.waitlists[target].len() >= ov.waitlist_cap {
                match ov.shed_policy {
                    ShedPolicy::RejectOldest if !self.waitlists[target].is_empty() => {
                        let Some(victim) = self.waitlists[target].pop_front() else {
                            // Queue emptied between the guard and the
                            // pop — a books desync; fall back to the
                            // tail-drop behaviour of the `_` arm.
                            self.stats.desyncs += 1;
                            self.stats.shed += 1;
                            ev.kind = EventKind::Shed;
                            ev.node = target as u32;
                            ev.reject = RejectKind::WaitlistFull;
                            self.emit(ev);
                            return Err(TopoError::WaitlistFull {
                                node: NodeId(target as u32),
                            });
                        };
                        let mut sv = TraceEvent::at(now.cycles(), EventKind::Shed);
                        sv.node = target as u32;
                        sv.pp = victim.pp.0;
                        let (r, a) = Self::primary(&victim.accounted);
                        sv.resource = r;
                        sv.amount = a;
                        sv.reject = RejectKind::WaitlistFull;
                        sv.wait_cycles =
                            now.cycles().saturating_sub(victim.enqueued_at.cycles());
                        match self.records.remove(&victim.pp.0) {
                            Some(rec) => {
                                sv.process = rec.process.0;
                                sv.site = rec.site.0;
                            }
                            None => self.stats.desyncs += 1,
                        }
                        self.stats.shed += 1;
                        self.emit(sv);
                        shed_victim = Some(victim.pp);
                    }
                    ShedPolicy::DegradeToOverflow => {
                        if let Err(k) = self.account_overflow(target, &acc) {
                            self.stats.clamped += 1;
                            ev.kind = EventKind::Reject;
                            ev.reject = RejectKind::DemandOverflow;
                            self.emit(ev);
                            return Err(TopoError::DemandOverflow {
                                kind: k,
                                declared: acc.get(k),
                                capacity: self.cfg.spec.max_capacity(k),
                            });
                        }
                        let pp = self.register(
                            process,
                            site,
                            layer,
                            NodeId(target as u32),
                            audited,
                            acc,
                            true,
                            true,
                            now,
                        );
                        self.stats.shed += 1;
                        ev.kind = EventKind::Shed;
                        ev.node = target as u32;
                        ev.pp = pp.0;
                        let (r, a) = Self::primary(&acc);
                        ev.resource = r;
                        ev.amount = a;
                        self.emit(ev);
                        return Ok(BeginOutcome::Run { pp, fast: false });
                    }
                    _ => {
                        self.stats.shed += 1;
                        ev.kind = EventKind::Shed;
                        ev.node = target as u32;
                        ev.reject = RejectKind::WaitlistFull;
                        self.emit(ev);
                        return Err(TopoError::WaitlistFull {
                            node: NodeId(target as u32),
                        });
                    }
                }
            }
        }
        let pp = self.register(
            process,
            site,
            layer,
            NodeId(target as u32),
            audited,
            acc,
            false,
            false,
            now,
        );
        self.waitlists[target].push_back(TopoWaitEntry {
            pp,
            accounted: acc,
            enqueued_at: now,
        });
        self.stats.paused += 1;
        self.stats.max_waitlist = self
            .stats
            .max_waitlist
            .max(self.waitlists[target].len() as u64);
        ev.kind = EventKind::Pause;
        ev.node = target as u32;
        ev.pp = pp.0;
        let (r, a) = Self::primary(&acc);
        ev.resource = r;
        ev.amount = a;
        self.emit(ev);
        Ok(BeginOutcome::Pause {
            pp,
            shed: shed_victim,
        })
    }

    /// Process a `pp_end`. Misbehaving applications get the same typed
    /// rejections as the scalar engine; state is untouched on every
    /// error path. The completed period's node is drained afterwards.
    pub fn pp_end(&mut self, pp: PpId, now: SimTime) -> Result<EndOutcome, TopoError> {
        self.stats.ends += 1;
        let mut ev = TraceEvent::at(now.cycles(), EventKind::End);
        ev.node = NO_NODE;
        ev.pp = pp.0;
        let Some(&rec) = self.records.get(&pp.0) else {
            self.stats.rejected_ends += 1;
            let (err, reject) = if pp.0 < self.next_id {
                (TopoError::DoubleEnd(pp), RejectKind::DoubleEnd)
            } else {
                (TopoError::UnknownPp(pp), RejectKind::UnknownPp)
            };
            ev.kind = EventKind::Reject;
            ev.reject = reject;
            self.emit(ev);
            return Err(err);
        };
        if !rec.admitted {
            self.stats.rejected_ends += 1;
            ev.kind = EventKind::Reject;
            ev.reject = RejectKind::EndWhileWaitlisted;
            ev.node = rec.node.0;
            ev.process = rec.process.0;
            ev.site = rec.site.0;
            self.emit(ev);
            return Err(TopoError::EndWhileWaitlisted(pp));
        }
        self.records.remove(&pp.0);
        self.release(&rec);
        ev.node = rec.node.0;
        ev.process = rec.process.0;
        ev.site = rec.site.0;
        let (r, a) = Self::primary(&rec.accounted);
        ev.resource = r;
        ev.amount = a;
        self.emit(ev);
        let resumed = self.drain_node(rec.node.0 as usize, now);
        Ok(EndOutcome {
            fast: false,
            resumed,
        })
    }

    /// Reclaim everything a dying process holds across every node, then
    /// drain each touched node. Reclaiming marks the whole *node*
    /// touched — not one resource — because a vector release frees
    /// several kinds at once and any of them can unblock a waiter.
    pub fn process_exit(&mut self, process: ProcessId, now: SimTime) -> Vec<(PpId, ProcessId)> {
        let live: Vec<u64> = self
            .records
            .values()
            .filter(|r| r.process == process)
            .map(|r| r.id.0)
            .collect();
        let had_any = !live.is_empty();
        let count = live.len() as u64;
        let mut touched = vec![false; self.node_count()];
        for id in live {
            let Some(rec) = self.records.remove(&id) else {
                self.stats.desyncs += 1;
                continue;
            };
            let n = rec.node.0 as usize;
            touched[n] = true;
            if rec.admitted {
                self.release(&rec);
            } else {
                let q = &mut self.waitlists[n];
                if let Some(pos) = q.iter().position(|e| e.pp.0 == id) {
                    q.remove(pos);
                }
            }
            self.stats.reclaimed += 1;
        }
        let mut ev = TraceEvent::at(now.cycles(), EventKind::Exit);
        ev.node = NO_NODE;
        ev.process = process.0;
        ev.amount = count;
        self.emit(ev);
        if !had_any {
            return Vec::new();
        }
        let mut resumed = Vec::new();
        for n in 0..self.node_count() {
            if touched[n] || self.has_expired_waiter(n, now) {
                resumed.extend(self.drain_node(n, now));
            }
        }
        resumed
    }

    /// Apply waitlist aging at `now` on every node: expire waiters past
    /// their deadline, force-admit waiters past the aging timeout,
    /// admit newly fitting heads, then evaluate the per-node breakers.
    pub fn age_waitlist(&mut self, now: SimTime) -> AgeOutcome {
        let mut out = AgeOutcome::default();
        if self.cfg.waitlist_timeout_cycles.is_none() && self.cfg.overload.is_none() {
            return out;
        }
        let deadline = self.cfg.overload.and_then(|o| o.deadline_cycles);
        let nodes = self.node_count();
        let mut expired_touched = vec![false; nodes];
        if let Some(deadline) = deadline {
            for n in 0..nodes {
                // Enqueue times are monotone per queue, so expired
                // waiters form a prefix: oldest-first by construction.
                while let Some(&front) = self.waitlists[n].front() {
                    if now.since(front.enqueued_at).cycles() < deadline {
                        break;
                    }
                    self.waitlists[n].pop_front();
                    match self.records.remove(&front.pp.0) {
                        Some(rec) => {
                            self.stats.expired += 1;
                            expired_touched[n] = true;
                            let mut ev = TraceEvent::at(now.cycles(), EventKind::Expire);
                            ev.node = n as u32;
                            ev.process = rec.process.0;
                            ev.site = rec.site.0;
                            ev.pp = front.pp.0;
                            let (r, a) = Self::primary(&front.accounted);
                            ev.resource = r;
                            ev.amount = a;
                            ev.wait_cycles =
                                now.cycles().saturating_sub(front.enqueued_at.cycles());
                            self.emit(ev);
                            out.expired.push((front.pp, rec.process));
                        }
                        None => self.stats.desyncs += 1,
                    }
                }
            }
        }
        for n in 0..nodes {
            if expired_touched[n] || self.has_expired_waiter(n, now) {
                out.resumed.extend(self.drain_node(n, now));
            }
        }
        self.evaluate_breaker(now);
        out
    }

    /// Record a client-side retry of a previously shed or expired
    /// arrival (mirrors the scalar engine's counter).
    pub fn note_retry(&mut self, process: ProcessId, site: SiteId, k: ResourceKind, now: SimTime) {
        self.stats.retried += 1;
        let mut ev = TraceEvent::at(now.cycles(), EventKind::Retry);
        ev.node = NO_NODE;
        ev.process = process.0;
        ev.site = site.0;
        ev.resource = Self::trace_kind(k);
        self.emit(ev);
    }

    /// True when node `n` has a waiter past the aging timeout. O(1):
    /// enqueue times are monotone, so the front is the oldest.
    fn has_expired_waiter(&self, n: usize, now: SimTime) -> bool {
        let Some(timeout) = self.cfg.waitlist_timeout_cycles else {
            return false;
        };
        match self.waitlists[n].front() {
            Some(e) => now.since(e.enqueued_at).cycles() >= timeout,
            None => false,
        }
    }

    /// Per-node, per-kind breaker hysteresis (same thresholds on every
    /// node; occupancy is the node's nominal + overflow for the kind).
    fn evaluate_breaker(&mut self, now: SimTime) {
        let Some(b) = self.cfg.overload.and_then(|o| o.breaker) else {
            return;
        };
        for n in 0..self.node_count() {
            for k in ResourceKind::ALL {
                let i = k.index();
                let occupancy = self.usage[n][i].saturating_add(self.overflow[n][i]);
                if self.breaker_open[n][i] {
                    if occupancy < b.low_water {
                        self.breaker_below[n][i] += 1;
                        if self.breaker_below[n][i] >= b.recover_after {
                            self.breaker_open[n][i] = false;
                            self.breaker_below[n][i] = 0;
                            let mut ev = TraceEvent::at(now.cycles(), EventKind::BreakerReset);
                            ev.node = n as u32;
                            ev.resource = Self::trace_kind(k);
                            ev.amount = occupancy;
                            self.emit(ev);
                        }
                    } else {
                        self.breaker_below[n][i] = 0;
                    }
                } else if occupancy >= b.high_water {
                    self.breaker_above[n][i] += 1;
                    if self.breaker_above[n][i] >= b.trip_after {
                        self.breaker_open[n][i] = true;
                        self.breaker_above[n][i] = 0;
                        self.stats.breaker_trips += 1;
                        let mut ev = TraceEvent::at(now.cycles(), EventKind::BreakerTrip);
                        ev.node = n as u32;
                        ev.resource = Self::trace_kind(k);
                        ev.amount = occupancy;
                        self.emit(ev);
                    }
                } else {
                    self.breaker_above[n][i] = 0;
                }
            }
        }
    }

    /// Walk node `n`'s FIFO admitting while the head fits (every
    /// component re-evaluated), interleaved with aging force-admission
    /// of timed-out heads into the overflow bucket.
    fn drain_node(&mut self, n: usize, now: SimTime) -> Vec<(PpId, ProcessId)> {
        let mut resumed = Vec::new();
        loop {
            while let Some(&head) = self.waitlists[n].front() {
                let Some(&rec) = self.records.get(&head.pp.0) else {
                    // Orphaned waitlist entry (its record vanished):
                    // drop it, count the desync, keep draining behind.
                    self.waitlists[n].pop_front();
                    self.stats.desyncs += 1;
                    continue;
                };
                if !matches!(self.node_admittable(n, rec.layer, &head.accounted), Ok(true)) {
                    break;
                }
                if self.account_nominal(n, rec.layer, &head.accounted).is_err() {
                    // The per-layer ledger would wrap: leave the head
                    // parked; aging can still degrade it into the
                    // (checked) overflow bucket.
                    break;
                }
                self.waitlists[n].pop_front();
                if let Some(r) = self.records.get_mut(&head.pp.0) {
                    r.admitted = true;
                }
                self.stats.resumed += 1;
                let mut ev = TraceEvent::at(now.cycles(), EventKind::Resume);
                ev.node = n as u32;
                ev.process = rec.process.0;
                ev.site = rec.site.0;
                ev.pp = head.pp.0;
                let (r, a) = Self::primary(&head.accounted);
                ev.resource = r;
                ev.amount = a;
                ev.wait_cycles = now.cycles().saturating_sub(head.enqueued_at.cycles());
                self.emit(ev);
                resumed.push((head.pp, rec.process));
            }
            // The head (if any) does not fit. Aging: force-admit it
            // once it has waited past the timeout; removing it may let
            // queued periods behind it fit nominally.
            let Some(timeout) = self.cfg.waitlist_timeout_cycles else {
                break;
            };
            let Some(&head) = self.waitlists[n].front() else {
                break;
            };
            if now.since(head.enqueued_at).cycles() < timeout {
                break;
            }
            self.waitlists[n].pop_front();
            if !self.records.contains_key(&head.pp.0) {
                // Orphaned aged head: drop it and keep draining.
                self.stats.desyncs += 1;
                continue;
            }
            if self.account_overflow(n, &head.accounted).is_err() {
                // The overflow bucket would wrap: the head can neither
                // run nominally nor degrade. Shed it outright rather
                // than wedge the queue behind it forever.
                let mut sv = TraceEvent::at(now.cycles(), EventKind::Shed);
                sv.node = n as u32;
                sv.pp = head.pp.0;
                sv.reject = RejectKind::DemandOverflow;
                let (r, a) = Self::primary(&head.accounted);
                sv.resource = r;
                sv.amount = a;
                sv.wait_cycles = now.cycles().saturating_sub(head.enqueued_at.cycles());
                if let Some(rec) = self.records.remove(&head.pp.0) {
                    sv.process = rec.process.0;
                    sv.site = rec.site.0;
                }
                self.stats.clamped += 1;
                self.stats.shed += 1;
                self.emit(sv);
                continue;
            }
            let Some(rec) = self.records.get_mut(&head.pp.0) else {
                self.stats.desyncs += 1;
                continue;
            };
            rec.admitted = true;
            rec.overflow = true;
            let (process, site) = (rec.process, rec.site);
            self.stats.aged_admissions += 1;
            let mut ev = TraceEvent::at(now.cycles(), EventKind::Age);
            ev.node = n as u32;
            ev.process = process.0;
            ev.site = site.0;
            ev.pp = head.pp.0;
            let (r, a) = Self::primary(&head.accounted);
            ev.resource = r;
            ev.amount = a;
            ev.wait_cycles = now.cycles().saturating_sub(head.enqueued_at.cycles());
            self.emit(ev);
            resumed.push((head.pp, process));
        }
        resumed
    }

    /// A complete, comparable snapshot of the observable state.
    pub fn snapshot(&self) -> TopoSnapshot {
        TopoSnapshot {
            usage: self.usage.clone(),
            overflow: self.overflow.clone(),
            waitlists: self
                .waitlists
                .iter()
                .map(|q| {
                    q.iter()
                        .map(|e| TopoWaitSnap {
                            pp: e.pp,
                            accounted: e.accounted,
                            enqueued_cycles: e.enqueued_at.cycles(),
                        })
                        .collect()
                })
                .collect(),
            periods: self
                .records
                .values()
                .map(|r| TopoPpSnap {
                    id: r.id,
                    process: r.process,
                    site: r.site,
                    layer: r.layer,
                    node: r.node,
                    declared: r.declared,
                    accounted: r.accounted,
                    admitted: r.admitted,
                    overflow: r.overflow,
                })
                .collect(),
            stats: self.stats,
            allocated: self.next_id,
        }
    }

    /// Internal consistency: every book on every node equals the sum
    /// recomputed from the record store, per layer too, and each
    /// waitlist agrees with the records entry by entry.
    pub fn check_invariants(&self) -> Result<(), TopoError> {
        let nodes = self.node_count();
        let layers = self.cfg.layers.len();
        let mut usage = vec![[0u64; KIND_COUNT]; nodes];
        let mut overflow = vec![[0u64; KIND_COUNT]; nodes];
        let mut lusage = vec![vec![[0u64; KIND_COUNT]; nodes]; layers];
        let mut waiting = vec![0u64; nodes];
        for rec in self.records.values() {
            let n = rec.node.0 as usize;
            if rec.admitted {
                for k in ResourceKind::ALL {
                    let i = k.index();
                    let a = rec.accounted.get(k);
                    if rec.overflow {
                        overflow[n][i] += a;
                    } else {
                        usage[n][i] += a;
                        lusage[rec.layer.0 as usize][n][i] += a;
                    }
                }
            } else {
                waiting[n] += 1;
            }
        }
        for n in 0..nodes {
            for k in ResourceKind::ALL {
                let i = k.index();
                let node = NodeId(n as u32);
                if usage[n][i] != self.usage[n][i] {
                    return Err(TopoError::InvariantViolation {
                        node,
                        kind: k,
                        what: "nominal usage",
                        expected: usage[n][i],
                        actual: self.usage[n][i],
                    });
                }
                if overflow[n][i] != self.overflow[n][i] {
                    return Err(TopoError::InvariantViolation {
                        node,
                        kind: k,
                        what: "overflow usage",
                        expected: overflow[n][i],
                        actual: self.overflow[n][i],
                    });
                }
                for l in 0..layers {
                    if lusage[l][n][i] != self.layer_usage[l][n][i] {
                        return Err(TopoError::InvariantViolation {
                            node,
                            kind: k,
                            what: "layer usage",
                            expected: lusage[l][n][i],
                            actual: self.layer_usage[l][n][i],
                        });
                    }
                }
            }
        }
        for n in 0..nodes {
            let node = NodeId(n as u32);
            for e in &self.waitlists[n] {
                match self.records.get(&e.pp.0) {
                    None => {
                        return Err(TopoError::InvariantViolation {
                            node,
                            kind: ResourceKind::Llc,
                            what: "waitlist record missing",
                            expected: e.pp.0,
                            actual: 0,
                        })
                    }
                    Some(rec) if rec.admitted => {
                        return Err(TopoError::InvariantViolation {
                            node,
                            kind: ResourceKind::Llc,
                            what: "waitlisted record admitted",
                            expected: 0,
                            actual: e.pp.0,
                        })
                    }
                    Some(rec) if rec.node != node => {
                        return Err(TopoError::InvariantViolation {
                            node,
                            kind: ResourceKind::Llc,
                            what: "waitlisted record on wrong node",
                            expected: node.0 as u64,
                            actual: rec.node.0 as u64,
                        })
                    }
                    Some(_) => {}
                }
            }
            if waiting[n] != self.waitlists[n].len() as u64 {
                return Err(TopoError::InvariantViolation {
                    node,
                    kind: ResourceKind::Llc,
                    what: "waitlist count",
                    expected: waiting[n],
                    actual: self.waitlists[n].len() as u64,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerSpec;

    fn t(cycles: u64) -> SimTime {
        SimTime::from_cycles(cycles)
    }

    /// 2 nodes × (llc 100, membw 50, dram 1000), one Strict layer.
    fn two_node() -> TopoExtension {
        TopoExtension::new(TopoConfig::new(
            TopoSpec::uniform(2, 100, 50, 1000),
            LayerSet::single(PolicyKind::Strict),
        ))
    }

    fn run(e: &mut TopoExtension, p: u32, site: u32, d: Demand, now: SimTime) -> PpId {
        match e.pp_begin(ProcessId(p), SiteId(site), d, now).unwrap() {
            BeginOutcome::Run { pp, .. } => pp,
            other => panic!("expected Run, got {other:?}"),
        }
    }

    fn node_of(e: &TopoExtension, pp: PpId) -> NodeId {
        e.snapshot()
            .periods
            .iter()
            .find(|r| r.id == pp)
            .expect("live period")
            .node
    }

    #[test]
    fn placement_prefers_least_occupied_node_then_lowest_id() {
        let mut e = two_node();
        let a = run(&mut e, 0, 0, Demand::llc(60), t(0));
        assert_eq!(node_of(&e, a), NodeId(0), "tie breaks to node 0");
        let b = run(&mut e, 1, 0, Demand::llc(60), t(1));
        assert_eq!(node_of(&e, b), NodeId(1), "spills to the idle node");
        // 60/100 on each node; a small demand goes back to node 0.
        let c = run(&mut e, 2, 0, Demand::llc(10), t(2));
        assert_eq!(node_of(&e, c), NodeId(0));
        e.check_invariants().unwrap();
    }

    #[test]
    fn vector_predicate_gates_on_every_component() {
        let mut e = two_node();
        // Bandwidth is the scarce kind: 40/50 on both nodes.
        run(&mut e, 0, 0, Demand::new(10, 40, 0), t(0));
        run(&mut e, 1, 0, Demand::new(10, 40, 0), t(1));
        // Plenty of LLC everywhere, but no node has 20 bandwidth left.
        let out = e
            .pp_begin(ProcessId(2), SiteId(0), Demand::new(5, 20, 0), t(2))
            .unwrap();
        assert!(matches!(out, BeginOutcome::Pause { .. }));
        e.check_invariants().unwrap();
    }

    #[test]
    fn multi_kind_exit_drains_waiters_blocked_on_any_component() {
        // One node so the waiter has nowhere to spill.
        let mut e = TopoExtension::new(TopoConfig::new(
            TopoSpec::single(100, 50, 1000),
            LayerSet::single(PolicyKind::Strict),
        ));
        // The holder occupies llc AND membw; the waiter only needs
        // membw. Its resumption must ride the holder's exit even
        // though the two demands share no *primary* kind.
        run(&mut e, 0, 0, Demand::new(90, 45, 0), t(0));
        let out = e
            .pp_begin(
                ProcessId(1),
                SiteId(0),
                Demand::ZERO.with(ResourceKind::MemBw, 20),
                t(1),
            )
            .unwrap();
        let BeginOutcome::Pause { pp: waiter, .. } = out else {
            panic!("expected Pause, got {out:?}");
        };
        let resumed = e.process_exit(ProcessId(0), t(2));
        assert_eq!(resumed, vec![(waiter, ProcessId(1))]);
        assert!(e.pp_end(waiter, t(3)).is_ok());
        assert!(e.snapshot().is_idle());
        e.check_invariants().unwrap();
    }

    #[test]
    fn guarantee_reserves_capacity_for_its_layer() {
        // latency (layer 1) guarantees 40 llc per node; batch (layer
        // 0) may then only use 60 of 100.
        let layers = LayerSet::new(vec![
            LayerSpec::new("batch", PolicyKind::Strict),
            LayerSpec::new("latency", PolicyKind::Strict).with_guarantee(Demand::llc(40)),
        ])
        .with_assignment(9, LayerId(1));
        let mut e = TopoExtension::new(TopoConfig::new(TopoSpec::single(100, 50, 1000), layers));
        run(&mut e, 0, 0, Demand::llc(60), t(0));
        // Batch is now at the guarantee-adjusted limit.
        let out = e
            .pp_begin(ProcessId(1), SiteId(0), Demand::llc(10), t(1))
            .unwrap();
        assert!(matches!(out, BeginOutcome::Pause { .. }), "got {out:?}");
        // The guaranteed layer still fits in its reserved slice...
        let lat = run(&mut e, 9, 0, Demand::llc(30), t(2));
        assert_eq!(e.layer_usage(LayerId(1), NodeId(0), ResourceKind::Llc), 30);
        // ...and its usage draws the reservation down, so batch's
        // effective limit rises as the guarantee is consumed.
        assert_eq!(e.reserved_by_others(0, ResourceKind::Llc, LayerId(0)), 10);
        e.pp_end(lat, t(3)).unwrap();
        e.check_invariants().unwrap();
    }

    #[test]
    fn trivial_single_layer_has_no_reservations() {
        let e = two_node();
        assert_eq!(e.reserved_by_others(0, ResourceKind::Llc, LayerId(0)), 0);
    }

    #[test]
    fn end_rejections_are_typed_and_state_preserving() {
        let mut e = two_node();
        let pp = run(&mut e, 0, 0, Demand::llc(10), t(0));
        assert_eq!(
            e.pp_end(PpId(99), t(1)),
            Err(TopoError::UnknownPp(PpId(99)))
        );
        e.pp_end(pp, t(2)).unwrap();
        assert_eq!(e.pp_end(pp, t(3)), Err(TopoError::DoubleEnd(pp)));
        // Fill both nodes so the next arrival must wait.
        run(&mut e, 1, 0, Demand::llc(100), t(4));
        run(&mut e, 2, 0, Demand::llc(100), t(5));
        let BeginOutcome::Pause { pp: w2, .. } = e
            .pp_begin(ProcessId(3), SiteId(0), Demand::llc(100), t(6))
            .unwrap()
        else {
            panic!("expected Pause");
        };
        assert_eq!(e.pp_end(w2, t(7)), Err(TopoError::EndWhileWaitlisted(w2)));
        assert_eq!(e.stats().rejected_ends, 3);
        e.check_invariants().unwrap();
    }

    #[test]
    fn oversized_component_admits_via_deadlock_guard() {
        let mut e = two_node();
        // 200 llc exceeds every node's capacity; Trust audit keeps it,
        // and the per-component guard admits rather than wedging.
        let pp = run(&mut e, 0, 0, Demand::llc(200), t(0));
        assert_eq!(e.stats().oversized_admits, 1);
        e.pp_end(pp, t(1)).unwrap();
        assert!(e.snapshot().is_idle());
    }

    #[test]
    fn audit_clamp_and_reject_work_per_component() {
        let spec = TopoSpec::uniform(2, 100, 50, 1000);
        let mut clamp = TopoExtension::new(
            TopoConfig::new(spec.clone(), LayerSet::single(PolicyKind::Strict))
                .with_demand_audit(DemandAudit::Clamp),
        );
        let pp = run(&mut clamp, 0, 0, Demand::new(500, 10, 0), t(0));
        assert_eq!(clamp.stats().clamped, 1);
        assert_eq!(clamp.usage(NodeId(0), ResourceKind::Llc), 100);
        assert_eq!(clamp.usage(NodeId(0), ResourceKind::MemBw), 10);
        clamp.pp_end(pp, t(1)).unwrap();

        let mut reject = TopoExtension::new(
            TopoConfig::new(spec, LayerSet::single(PolicyKind::Strict))
                .with_demand_audit(DemandAudit::Reject),
        );
        let err = reject
            .pp_begin(ProcessId(0), SiteId(0), Demand::new(10, 500, 0), t(0))
            .unwrap_err();
        assert_eq!(
            err,
            TopoError::DemandOverflow {
                kind: ResourceKind::MemBw,
                declared: 500,
                capacity: 50,
            }
        );
        assert!(reject.snapshot().is_idle());
    }

    #[test]
    fn aging_force_admits_into_overflow_per_node() {
        let mut e = TopoExtension::new(
            TopoConfig::new(
                TopoSpec::single(100, 50, 1000),
                LayerSet::single(PolicyKind::Strict),
            )
            .with_waitlist_timeout_cycles(10),
        );
        run(&mut e, 0, 0, Demand::llc(100), t(0));
        let BeginOutcome::Pause { pp: waiter, .. } = e
            .pp_begin(ProcessId(1), SiteId(0), Demand::llc(50), t(1))
            .unwrap()
        else {
            panic!("expected Pause");
        };
        let out = e.age_waitlist(t(20));
        assert_eq!(out.resumed, vec![(waiter, ProcessId(1))]);
        assert_eq!(e.overflow_usage(NodeId(0), ResourceKind::Llc), 50);
        assert_eq!(e.stats().aged_admissions, 1);
        e.check_invariants().unwrap();
    }

    #[test]
    fn compat_config_mirrors_scalar_shape() {
        let m = rda_machine::MachineConfig::xeon_e5_2420();
        let scalar = crate::config::RdaConfig::for_machine(&m, PolicyKind::Strict);
        let cfg = TopoConfig::compat(&scalar);
        assert_eq!(cfg.spec.node_count(), 1);
        assert!(cfg.layers.is_trivial());
        assert_eq!(
            cfg.spec.capacity(NodeId(0), ResourceKind::Llc),
            scalar.llc_capacity
        );
        assert_eq!(
            cfg.spec.capacity(NodeId(0), ResourceKind::MemBw),
            scalar.membw_capacity
        );
    }

    #[test]
    fn orphaned_waitlist_entry_is_dropped_not_panicked() {
        let mut e = TopoExtension::new(TopoConfig::new(
            TopoSpec::single(100, 50, 1000),
            LayerSet::single(PolicyKind::Strict),
        ));
        let holder = run(&mut e, 0, 0, Demand::llc(100), t(0));
        let BeginOutcome::Pause { pp: orphan, .. } = e
            .pp_begin(ProcessId(1), SiteId(0), Demand::llc(40), t(1))
            .unwrap()
        else {
            panic!("expected Pause");
        };
        let BeginOutcome::Pause { pp: behind, .. } = e
            .pp_begin(ProcessId(2), SiteId(0), Demand::llc(30), t(2))
            .unwrap()
        else {
            panic!("expected Pause");
        };
        // Corrupt the record store: the head's record vanishes while
        // its waitlist entry stays — the drain must drop the orphan,
        // count the desync, and still admit the entry behind it.
        e.records.remove(&orphan.0);
        let out = e.pp_end(holder, t(3)).unwrap();
        assert_eq!(e.stats().desyncs, 1);
        assert_eq!(out.resumed, vec![(behind, ProcessId(2))]);
        assert!(e.snapshot().waitlists[0].is_empty());
        e.check_invariants().unwrap();
    }

    #[test]
    fn overflow_bucket_wrap_is_a_typed_rejection() {
        let mut e = TopoExtension::new(
            TopoConfig::new(
                TopoSpec::single(100, u64::MAX, 1000),
                LayerSet::single(PolicyKind::Strict),
            )
            .with_overload(OverloadConfig {
                waitlist_cap: 0,
                shed_policy: ShedPolicy::DegradeToOverflow,
                deadline_cycles: None,
                breaker: None,
            }),
        );
        run(&mut e, 0, 0, Demand::llc(100), t(0)); // fill the LLC
        // First degraded admission parks u64::MAX bandwidth in the
        // overflow bucket (fits: the bucket starts empty).
        let d = Demand::new(50, u64::MAX, 0);
        match e.pp_begin(ProcessId(1), SiteId(0), d, t(1)).unwrap() {
            BeginOutcome::Run { .. } => {}
            other => panic!("expected degraded Run, got {other:?}"),
        }
        // The second would wrap the bandwidth book: typed rejection,
        // nothing half-accounted.
        let clamped = e.stats().clamped;
        let err = e.pp_begin(ProcessId(2), SiteId(0), d, t(2)).unwrap_err();
        assert!(matches!(
            err,
            TopoError::DemandOverflow {
                kind: ResourceKind::MemBw,
                ..
            }
        ));
        assert_eq!(e.stats().clamped, clamped + 1);
        e.check_invariants().unwrap();
    }

    #[test]
    fn layer_ledger_wrap_rejects_admission_not_panics() {
        let mut e = TopoExtension::new(TopoConfig::new(
            TopoSpec::single(100, 50, 1000),
            LayerSet::single(PolicyKind::Strict),
        ));
        // Corrupt the per-layer ledger near the wrap point while the
        // node book stays small: accounting must reject, not panic,
        // and must not half-apply the vector.
        e.layer_usage[0][0][ResourceKind::Llc.index()] = u64::MAX;
        let err = e
            .pp_begin(ProcessId(0), SiteId(0), Demand::llc(10), t(0))
            .unwrap_err();
        assert!(matches!(
            err,
            TopoError::DemandOverflow {
                kind: ResourceKind::Llc,
                ..
            }
        ));
        assert_eq!(e.usage[0][ResourceKind::Llc.index()], 0);
        assert!(e.snapshot().periods.is_empty());
    }

    #[test]
    fn aged_head_that_would_wrap_overflow_is_shed() {
        let mut e = TopoExtension::new(
            TopoConfig::new(
                TopoSpec::single(100, u64::MAX, 1000),
                LayerSet::single(PolicyKind::Strict),
            )
            .with_overload(OverloadConfig {
                waitlist_cap: 1,
                shed_policy: ShedPolicy::DegradeToOverflow,
                deadline_cycles: None,
                breaker: None,
            })
            .with_waitlist_timeout_cycles(10),
        );
        run(&mut e, 0, 0, Demand::llc(100), t(0)); // holder fills the LLC
        // X parks at the head demanding the whole bandwidth book.
        let BeginOutcome::Pause { pp: head, .. } = e
            .pp_begin(ProcessId(1), SiteId(0), Demand::new(50, u64::MAX, 0), t(1))
            .unwrap()
        else {
            panic!("expected Pause");
        };
        // Y hits the full gate and degrades, parking u64::MAX
        // bandwidth in the overflow bucket.
        match e
            .pp_begin(ProcessId(2), SiteId(0), Demand::new(50, u64::MAX, 0), t(2))
            .unwrap()
        {
            BeginOutcome::Run { .. } => {}
            other => panic!("expected degraded Run, got {other:?}"),
        }
        // Aging must shed X: it cannot run nominally (LLC full) and
        // degrading it would wrap the bandwidth overflow bucket.
        let shed = e.stats().shed;
        e.age_waitlist(t(100));
        assert_eq!(e.stats().shed, shed + 1);
        assert!(e.snapshot().periods.iter().all(|p| p.id != head));
        assert!(e.snapshot().waitlists[0].is_empty());
        e.check_invariants().unwrap();
    }

    #[test]
    fn validated_config_rejects_zero_capacity_spec() {
        let err = TopoConfig::validated(
            TopoSpec::single(100, 0, 1000),
            LayerSet::single(PolicyKind::Strict),
        )
        .unwrap_err();
        assert_eq!(
            err,
            crate::topology::SpecError::ZeroCapacity {
                node: NodeId(0),
                kind: ResourceKind::MemBw,
            }
        );
        assert!(TopoConfig::validated(
            TopoSpec::single(100, 50, 1000),
            LayerSet::single(PolicyKind::Strict),
        )
        .is_ok());
    }

    #[test]
    fn default_only_layer_bypasses() {
        let mut e = TopoExtension::new(TopoConfig::new(
            TopoSpec::single(100, 50, 1000),
            LayerSet::single(PolicyKind::DefaultOnly),
        ));
        let out = e
            .pp_begin(ProcessId(0), SiteId(0), Demand::llc(1000), t(0))
            .unwrap();
        assert_eq!(out, BeginOutcome::Bypass);
        assert_eq!(e.stats().begins, 0);
        assert!(e.snapshot().is_idle());
    }
}
