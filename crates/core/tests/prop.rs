//! Property-based tests for the RDA extension: for arbitrary sequences
//! of progress-period begin/end events, the load table stays exact,
//! policies are never violated, and the waitlist drains.

use proptest::prelude::*;
use rda_core::{
    mb, BeginOutcome, PolicyKind, PpDemand, PpId, RdaConfig, RdaExtension, Resource, SiteId,
};
use rda_machine::{MachineConfig, ReuseLevel};
use rda_sched::ProcessId;
use rda_simcore::SimTime;

#[derive(Debug, Clone)]
enum Op {
    Begin {
        process: u8,
        site: u8,
        tenth_mb: u16,
        reuse: u8,
    },
    EndOldest,
    EndNewest,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..8, 0u8..4, 1u16..200, 0u8..3).prop_map(|(process, site, tenth_mb, reuse)| {
            Op::Begin { process, site, tenth_mb, reuse }
        }),
        1 => Just(Op::EndOldest),
        1 => Just(Op::EndNewest),
    ]
}

fn reuse_of(r: u8) -> ReuseLevel {
    match r {
        0 => ReuseLevel::Low,
        1 => ReuseLevel::Medium,
        _ => ReuseLevel::High,
    }
}

fn policies() -> [PolicyKind; 3] {
    [
        PolicyKind::Strict,
        PolicyKind::compromise_default(),
        PolicyKind::Partitioned { quota_frac: 0.3 },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Registry/monitor consistency and policy limits hold through any
    /// operation sequence, and ending everything returns to idle.
    #[test]
    fn extension_invariants_hold(ops in prop::collection::vec(arb_op(), 1..80)) {
        for policy in policies() {
            let cfg = RdaConfig::for_machine(&MachineConfig::xeon_e5_2420(), policy);
            let capacity = cfg.llc_capacity;
            let limit = policy.usage_limit(capacity);
            let mut ext = RdaExtension::new(cfg);
            let mut admitted: Vec<PpId> = Vec::new();
            let mut clock = 0u64;

            for op in &ops {
                clock += 1_000;
                match *op {
                    Op::Begin { process, site, tenth_mb, reuse } => {
                        let demand = PpDemand::llc(
                            mb(tenth_mb as f64 / 10.0),
                            reuse_of(reuse),
                        );
                        let accounted = policy.effective_demand(demand.amount, capacity);
                        let out = ext.pp_begin(
                            ProcessId(process as u32),
                            SiteId(site as u32),
                            demand,
                            SimTime::from_cycles(clock),
                        ).expect("default Trust audit never rejects");
                        match out {
                            BeginOutcome::Run { pp, .. } => {
                                admitted.push(pp);
                                // Admission may only exceed the policy
                                // limit through the oversized-demand
                                // deadlock guard.
                                if accounted <= limit {
                                    prop_assert!(
                                        ext.usage(Resource::Llc) <= limit,
                                        "{policy}: usage {} over limit {limit}",
                                        ext.usage(Resource::Llc)
                                    );
                                }
                            }
                            BeginOutcome::Pause { .. } => {}
                            BeginOutcome::Bypass => unreachable!("gating policies only"),
                        }
                    }
                    Op::EndOldest => {
                        if !admitted.is_empty() {
                            let pp = admitted.remove(0);
                            let out = ext.pp_end(pp, SimTime::from_cycles(clock))
                                .expect("ending a live admitted period");
                            admitted.extend(out.resumed.iter().map(|&(pp, _)| pp));
                        }
                    }
                    Op::EndNewest => {
                        if let Some(pp) = admitted.pop() {
                            let out = ext.pp_end(pp, SimTime::from_cycles(clock))
                                .expect("ending a live admitted period");
                            admitted.extend(out.resumed.iter().map(|&(pp, _)| pp));
                        }
                    }
                }
                prop_assert!(ext.check_invariants().is_ok(), "{policy}");
            }

            // Drain everything; the system must return to idle.
            while let Some(pp) = admitted.pop() {
                clock += 1_000;
                let out = ext.pp_end(pp, SimTime::from_cycles(clock))
                    .expect("ending a live admitted period");
                admitted.extend(out.resumed.iter().map(|&(pp, _)| pp));
            }
            prop_assert_eq!(ext.usage(Resource::Llc), 0, "{}", policy);
            prop_assert_eq!(ext.waitlist_len(Resource::Llc), 0, "{}", policy);
            let s = ext.stats();
            prop_assert_eq!(s.begins, s.ends);
            prop_assert_eq!(s.paused, s.resumed);
        }
    }

    /// The fast path is exact: a run with memoisation admits/pauses the
    /// same sequence as a run with the fast path disabled (re-eval
    /// interval forced to zero).
    #[test]
    fn fast_path_is_semantically_invisible(
        ops in prop::collection::vec(arb_op(), 1..60),
    ) {
        let machine = MachineConfig::xeon_e5_2420();
        let with_fast = RdaConfig::for_machine(&machine, PolicyKind::Strict);
        let mut without_fast = with_fast.clone();
        without_fast.min_eval_interval_cycles = 0;

        let decisions = |cfg: RdaConfig| {
            let mut ext = RdaExtension::new(cfg);
            let mut admitted: Vec<PpId> = Vec::new();
            let mut log = Vec::new();
            let mut clock = 0u64;
            for op in &ops {
                clock += 10; // dense in time to exercise the fast path
                match *op {
                    Op::Begin { process, site, tenth_mb, reuse } => {
                        let demand = PpDemand::llc(mb(tenth_mb as f64 / 10.0), reuse_of(reuse));
                        let out = ext.pp_begin(
                            ProcessId(process as u32),
                            SiteId(site as u32),
                            demand,
                            SimTime::from_cycles(clock),
                        ).expect("default Trust audit never rejects");
                        match out {
                            BeginOutcome::Run { pp, .. } => {
                                log.push(true);
                                admitted.push(pp);
                            }
                            BeginOutcome::Pause { .. } => log.push(false),
                            BeginOutcome::Bypass => unreachable!(),
                        }
                    }
                    Op::EndOldest if !admitted.is_empty() => {
                        let pp = admitted.remove(0);
                        let out = ext.pp_end(pp, SimTime::from_cycles(clock))
                            .expect("ending a live admitted period");
                        admitted.extend(out.resumed.iter().map(|&(pp, _)| pp));
                    }
                    Op::EndNewest => {
                        if let Some(pp) = admitted.pop() {
                            let out = ext.pp_end(pp, SimTime::from_cycles(clock))
                                .expect("ending a live admitted period");
                            admitted.extend(out.resumed.iter().map(|&(pp, _)| pp));
                        }
                    }
                    _ => {}
                }
            }
            log
        };

        prop_assert_eq!(decisions(with_fast), decisions(without_fast));
    }
}

#[derive(Debug, Clone)]
enum WlOp {
    Push(u16),
    Pop,
    Cancel(u8),
    PopExpired(u16),
}

fn arb_wl_op() -> impl Strategy<Value = WlOp> {
    prop_oneof![
        4 => (0u16..1_000).prop_map(WlOp::Push),
        1 => Just(WlOp::Pop),
        1 => (0u8..40).prop_map(WlOp::Cancel),
        1 => (0u16..1_000).prop_map(WlOp::PopExpired),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The waitlist agrees with a naive Vec model through arbitrary
    /// push/pop/cancel/expiry sequences whose lengths cross the
    /// inline-buffer promotion boundary (16 → 17 → back below 16) in
    /// both directions: FIFO order, expiry selection, and the cached
    /// minimum enqueue time all stay exact.
    #[test]
    fn waitlist_matches_model_across_the_promotion_boundary(
        ops in prop::collection::vec(arb_wl_op(), 1..120)
    ) {
        use rda_core::waitlist::{WaitEntry, Waitlist};
        let mut w = Waitlist::new();
        let mut model: Vec<(u64, u64)> = Vec::new(); // (pp, stamp), queue order
        let mut next = 0u64;
        for op in ops {
            match op {
                WlOp::Push(stamp) => {
                    let stamp = stamp as u64;
                    w.push(
                        Resource::Llc,
                        WaitEntry {
                            pp: PpId(next),
                            accounted: 1,
                            enqueued_at: SimTime::from_cycles(stamp),
                        },
                    )
                    .expect("fresh ids never collide");
                    model.push((next, stamp));
                    next += 1;
                }
                WlOp::Pop => {
                    let got = w.pop(Resource::Llc).map(|e| e.pp.0);
                    let want = if model.is_empty() {
                        None
                    } else {
                        Some(model.remove(0).0)
                    };
                    prop_assert_eq!(got, want);
                }
                WlOp::Cancel(i) => {
                    if model.is_empty() {
                        prop_assert!(!w.cancel(Resource::Llc, PpId(next)));
                    } else {
                        let i = i as usize % model.len();
                        let (pp, _) = model.remove(i);
                        prop_assert!(w.cancel(Resource::Llc, PpId(pp)));
                    }
                }
                WlOp::PopExpired(timeout) => {
                    // `now` dominates every stamp, so expiry is purely
                    // a wait-length question.
                    let now = 2_000u64;
                    let timeout = timeout as u64;
                    let got = w
                        .pop_expired(Resource::Llc, SimTime::from_cycles(now), timeout)
                        .map(|e| e.pp.0);
                    // Model: the first entry holding the minimal stamp,
                    // if it has waited long enough.
                    let want = model
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, &(_, s))| s)
                        .filter(|&(_, &(_, s))| now - s >= timeout)
                        .map(|(i, _)| i)
                        .map(|i| model.remove(i).0);
                    prop_assert_eq!(got, want);
                }
            }
            let order: Vec<u64> = w.iter(Resource::Llc).map(|e| e.pp.0).collect();
            let expect: Vec<u64> = model.iter().map(|&(pp, _)| pp).collect();
            prop_assert_eq!(order, expect, "queue order diverged from model");
            let oldest = w.oldest(Resource::Llc).map(|t| t.cycles());
            prop_assert_eq!(oldest, model.iter().map(|&(_, s)| s).min());
        }
    }
}
