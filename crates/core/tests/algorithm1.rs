//! Property tests for the Algorithm 1 scheduling predicate, as wired
//! into [`RdaExtension`]:
//!
//! * under **Strict**, admitted demand never exceeds nominal capacity;
//! * under **Compromise(x)**, admitted demand never exceeds `x ×`
//!   capacity;
//! * every `pp_end` re-attempts the waitlist: afterwards the FIFO head
//!   either got admitted or genuinely does not fit.
//!
//! Demands are generated strictly below the policy's usage limit so the
//! oversized-demand deadlock guard (tested separately) never fires —
//! these properties are about the predicate proper.

use proptest::prelude::*;
use rda_core::{
    mb, BeginOutcome, PolicyKind, PpDemand, PpId, RdaConfig, RdaExtension, Resource, SiteId,
};
use rda_machine::{MachineConfig, ReuseLevel};
use rda_sched::ProcessId;
use rda_simcore::SimTime;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Begin a period of `tenth_mb / 10` MB from `process`.
    Begin { process: u8, site: u8, tenth_mb: u16 },
    /// End the oldest still-admitted period.
    EndOldest,
    /// End the newest still-admitted period.
    EndNewest,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..8, 0u8..4, 1u16..140).prop_map(|(process, site, tenth_mb)| {
            Op::Begin { process, site, tenth_mb }
        }),
        1 => Just(Op::EndOldest),
        1 => Just(Op::EndNewest),
    ]
}

/// Drives an extension through `ops`, calling `check` after every
/// operation with (extension, FIFO of still-waiting (pp, demand)).
fn drive(
    policy: PolicyKind,
    ops: &[Op],
    mut check: impl FnMut(&RdaExtension, &[(PpId, u64)], bool),
) {
    let cfg = RdaConfig::for_machine(&MachineConfig::xeon_e5_2420(), policy);
    let limit = policy.usage_limit(cfg.llc_capacity);
    let mut ext = RdaExtension::new(cfg);
    let mut admitted: Vec<PpId> = Vec::new();
    let mut waiting: Vec<(PpId, u64)> = Vec::new();
    let mut clock = 0u64;
    for op in ops {
        clock += 1_000;
        let now = SimTime::from_cycles(clock);
        let mut was_end = false;
        match *op {
            Op::Begin {
                process,
                site,
                tenth_mb,
            } => {
                let amount = mb(tenth_mb as f64 / 10.0).min(limit.saturating_sub(1));
                let demand = PpDemand::llc(amount, ReuseLevel::High);
                let out = ext
                    .pp_begin(ProcessId(process as u32), SiteId(site as u32), demand, now)
                    .expect("default Trust audit never rejects");
                match out {
                    BeginOutcome::Run { pp, .. } => admitted.push(pp),
                    BeginOutcome::Pause { pp, .. } => waiting.push((pp, amount)),
                    BeginOutcome::Bypass => unreachable!("gating policies only"),
                }
            }
            Op::EndOldest | Op::EndNewest => {
                was_end = true;
                let ended = match op {
                    Op::EndOldest if !admitted.is_empty() => Some(admitted.remove(0)),
                    Op::EndNewest => admitted.pop(),
                    _ => None,
                };
                if let Some(pp) = ended {
                    let out = ext.pp_end(pp, now).expect("ending a live admitted period");
                    for &(pp, _) in &out.resumed {
                        let pos = waiting
                            .iter()
                            .position(|&(w, _)| w == pp)
                            .expect("resumed a period we never saw waitlisted");
                        prop_assert_eq!(pos, 0, "waitlist must resume in FIFO order");
                        waiting.remove(pos);
                        admitted.push(pp);
                    }
                }
            }
        }
        check(&ext, &waiting, was_end);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Strict: total admitted LLC demand stays within nominal capacity
    /// after every single operation.
    #[test]
    fn strict_admitted_demand_never_exceeds_capacity(
        ops in prop::collection::vec(arb_op(), 1..100),
    ) {
        let capacity = RdaConfig::for_machine(
            &MachineConfig::xeon_e5_2420(),
            PolicyKind::Strict,
        )
        .llc_capacity;
        drive(PolicyKind::Strict, &ops, |ext, _, _| {
            prop_assert!(
                ext.usage(Resource::Llc) <= capacity,
                "usage {} exceeds capacity {capacity}",
                ext.usage(Resource::Llc)
            );
        });
    }

    /// Compromise(x): total admitted LLC demand stays within x ×
    /// capacity after every single operation, for several x.
    #[test]
    fn compromise_admitted_demand_never_exceeds_x_capacity(
        ops in prop::collection::vec(arb_op(), 1..100),
        factor_tenths in 10u8..40,
    ) {
        let factor = factor_tenths as f64 / 10.0;
        let policy = PolicyKind::Compromise { factor };
        let capacity = RdaConfig::for_machine(
            &MachineConfig::xeon_e5_2420(),
            policy,
        )
        .llc_capacity;
        let limit = policy.usage_limit(capacity);
        drive(policy, &ops, |ext, _, _| {
            prop_assert!(
                ext.usage(Resource::Llc) <= limit,
                "usage {} exceeds {factor} x capacity = {limit}",
                ext.usage(Resource::Llc)
            );
        });
    }

    /// Every `pp_end` re-attempts the waitlist: immediately after an
    /// end, the FIFO head (if any) must be a period that genuinely does
    /// not fit under the current usage — a fitting head left waiting
    /// would mean the re-attempt was skipped.
    #[test]
    fn waitlist_is_reattempted_on_every_pp_end(
        ops in prop::collection::vec(arb_op(), 1..100),
    ) {
        for policy in [PolicyKind::Strict, PolicyKind::compromise_default()] {
            let capacity = RdaConfig::for_machine(
                &MachineConfig::xeon_e5_2420(),
                policy,
            )
            .llc_capacity;
            let limit = policy.usage_limit(capacity);
            drive(policy, &ops, |ext, waiting, was_end| {
                if !was_end {
                    return;
                }
                if let Some(&(pp, demand)) = waiting.first() {
                    let free = limit - ext.usage(Resource::Llc);
                    prop_assert!(
                        demand > free,
                        "{policy}: head {pp} ({demand} B) fits in {free} B free \
                         but was left waiting after pp_end"
                    );
                }
            });
        }
    }
}
