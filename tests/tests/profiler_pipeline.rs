//! Integration: instrumented workloads → profiler → annotations →
//! scheduler (the §2.4 feasibility study as an executable pipeline).

use rda_core::{BeginOutcome, PolicyKind, RdaConfig, RdaExtension};
use rda_machine::{MachineConfig, ReuseLevel};
use rda_profiler::annotate::annotate;
use rda_profiler::detect::{detect_periods, DetectorConfig};
use rda_profiler::loopmap::{dgemm_loop_nest, water_loop_nest};
use rda_profiler::window::{windowize, WindowConfig};
use rda_sched::ProcessId;
use rda_simcore::SimTime;
use rda_workloads::blas::level3::dgemm_traced;
use rda_workloads::splash::water;
use rda_workloads::trace::TraceRecorder;

fn wcfg(ops: usize) -> WindowConfig {
    WindowConfig {
        window_ops: ops,
        wss_min_accesses: 2,
        line_bytes: 64,
    }
}

#[test]
fn dgemm_profiles_into_one_outer_loop_period() {
    let rec = TraceRecorder::new();
    dgemm_traced(40, &rec);
    let trace = rec.take();
    let windows = windowize(&trace, &wcfg(4_000));
    assert!(windows.len() > 10);
    let periods = detect_periods(&windows, &DetectorConfig::default());
    // dgemm's behaviour is uniform: one period covering ~everything.
    assert_eq!(periods.len(), 1, "{periods:?}");
    let anns = annotate(&periods, &dgemm_loop_nest());
    assert_eq!(anns.len(), 1);
    // Anchored at the outermost (i) loop even though the k-loop
    // dominates the back-edge samples.
    assert_eq!(anns[0].site.0, 0);
    // dgemm working set: three 40×40 f64 matrices ≈ 38 KB; the window
    // statistic must land in that decade.
    let ws = anns[0].ws_bytes;
    assert!((8_000..60_000).contains(&ws), "ws {ws}");
}

#[test]
fn water_profile_reflects_phase_structure() {
    let rec = TraceRecorder::new();
    water::run_nsquared_traced(400, 0.4, &rec);
    let trace = rec.take();
    // The interf phase's reuse distance is one outer iteration
    // (~1.2 k ops at N = 400); the window must span several of them to
    // observe the temporal reuse — the granularity tuning §2.4
    // describes ("manually experimenting with different granularities
    // of window sizes").
    let windows = windowize(&trace, &wcfg(25_000));
    let periods = detect_periods(&windows, &DetectorConfig::default());
    assert!(!periods.is_empty());
    // The interf (O(N²)) phase dominates the trace; its period must be
    // the longest and map to the INTERF loop.
    let longest = periods.iter().max_by_key(|p| p.len_windows()).unwrap();
    assert_eq!(longest.dominant_loop, Some(water::loops::INTERF));
    let anns = annotate(&periods, &water_loop_nest());
    assert!(!anns.is_empty());
    // High reuse: each molecule is touched ~N times in interf.
    let interf_ann = anns
        .iter()
        .find(|a| a.site.0 == water::loops::INTERF)
        .expect("interf annotation");
    assert_eq!(interf_ann.reuse, ReuseLevel::High);
}

#[test]
fn profiled_annotation_round_trips_through_the_scheduler() {
    // Profile the real kernel, then hand its detected demand to the
    // extension exactly as an instrumented application would.
    let rec = TraceRecorder::new();
    dgemm_traced(32, &rec);
    let windows = windowize(&rec.take(), &wcfg(4_000));
    let periods = detect_periods(&windows, &DetectorConfig::default());
    let anns = annotate(&periods, &dgemm_loop_nest());
    assert!(!anns.is_empty());

    let mut rda = RdaExtension::new(RdaConfig::for_machine(
        &MachineConfig::xeon_e5_2420(),
        PolicyKind::Strict,
    ));
    let ann = &anns[0];
    let outcome = rda
        .pp_begin(ProcessId(0), ann.site, ann.demand(), SimTime::ZERO)
        .expect("default Trust audit never rejects");
    match outcome {
        BeginOutcome::Run { pp, .. } => {
            assert_eq!(rda.usage(rda_core::Resource::Llc), ann.ws_bytes);
            let out = rda
                .pp_end(pp, SimTime::from_cycles(100))
                .expect("ending a live admitted period");
            assert!(out.resumed.is_empty());
        }
        other => panic!("a tiny profiled demand must be admitted: {other:?}"),
    }
    rda.check_invariants().unwrap();
}

#[test]
fn reuse_classification_separates_blas_levels() {
    // daxpy (level 1) must classify low; dgemm (level 3) at least
    // medium — the Table 2 contrast, measured from real traces.
    //
    // Reuse classification uses *word* granularity (the paper's §2.4
    // counts unique addresses): 64-byte lines would fold the spatial
    // locality of a stream into an apparent temporal reuse.
    let word_cfg = |ops| WindowConfig {
        window_ops: ops,
        wss_min_accesses: 2,
        line_bytes: 8,
    };
    let wcfg = word_cfg;
    let rec = TraceRecorder::new();
    rda_workloads::blas::level1::daxpy_traced(20_000, 2.0, &rec);
    let w_daxpy = windowize(&rec.take(), &wcfg(5_000));
    let daxpy_reuse =
        w_daxpy.iter().map(|w| w.reuse_ratio).sum::<f64>() / w_daxpy.len() as f64;

    let rec = TraceRecorder::new();
    dgemm_traced(40, &rec);
    // dgemm's reuse distance for B is one full (k, j) tile: the window
    // must cover several i-rows (~3.2 k ops each) to observe it.
    let w_dgemm = windowize(&rec.take(), &wcfg(20_000));
    let dgemm_reuse =
        w_dgemm.iter().map(|w| w.reuse_ratio).sum::<f64>() / w_dgemm.len() as f64;

    assert_eq!(ReuseLevel::from_reuse_ratio(daxpy_reuse), ReuseLevel::Low);
    assert!(dgemm_reuse > 3.0 * daxpy_reuse, "{dgemm_reuse} vs {daxpy_reuse}");
    assert_ne!(ReuseLevel::from_reuse_ratio(dgemm_reuse), ReuseLevel::Low);
}
