//! Property-based integration tests: for arbitrary (small) workloads,
//! the full stack completes, conserves work, and respects the policy
//! invariants under every scheduling policy.

use proptest::prelude::*;
use rda_core::{mb, PolicyKind, SiteId};
use rda_machine::ReuseLevel;
use rda_sim::{SimConfig, SystemSim};
use rda_workloads::{Phase, ProcessProgram, WorkloadSpec};

#[derive(Debug, Clone)]
struct ArbPhase {
    instr: u64,
    ws_tenth_mb: u64,
    reuse: u8,
    tracked: bool,
}

fn arb_phase() -> impl Strategy<Value = ArbPhase> {
    (
        1_000_000u64..20_000_000,
        1u64..80, // 0.1 .. 8.0 MB
        0u8..3,
        any::<bool>(),
    )
        .prop_map(|(instr, ws_tenth_mb, reuse, tracked)| ArbPhase {
            instr,
            ws_tenth_mb,
            reuse,
            tracked,
        })
}

fn build_spec(procs: Vec<(u8, Vec<ArbPhase>)>) -> WorkloadSpec {
    WorkloadSpec {
        name: "prop".into(),
        processes: procs
            .into_iter()
            .map(|(threads, phases)| ProcessProgram {
                threads: threads as usize,
                phases: phases
                    .into_iter()
                    .enumerate()
                    .map(|(k, p)| {
                        let reuse = match p.reuse {
                            0 => ReuseLevel::Low,
                            1 => ReuseLevel::Medium,
                            _ => ReuseLevel::High,
                        };
                        let ws = mb(p.ws_tenth_mb as f64 / 10.0);
                        if p.tracked {
                            Phase::tracked(format!("p{k}"), p.instr, ws, reuse, SiteId(k as u32))
                        } else {
                            Phase::untracked(format!("p{k}"), p.instr, ws, reuse)
                        }
                    })
                    .collect(),
            })
            .collect(),
    }
}

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    prop::collection::vec(
        (1u8..4, prop::collection::vec(arb_phase(), 1..4)),
        1..6,
    )
    .prop_map(build_spec)
}

fn policies() -> [PolicyKind; 4] {
    [
        PolicyKind::DefaultOnly,
        PolicyKind::Strict,
        PolicyKind::compromise_default(),
        PolicyKind::Partitioned { quota_frac: 0.5 },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No deadlocks, exact work conservation, positive physics — under
    /// every policy, for arbitrary workloads.
    #[test]
    fn any_workload_completes_under_any_policy(spec in arb_spec()) {
        let expected: u64 = spec
            .processes
            .iter()
            .map(|p| p.phases.iter().map(|ph| ph.instr_per_thread).sum::<u64>() * p.threads as u64)
            .sum();
        for policy in policies() {
            let mut sim = SystemSim::new(SimConfig::paper_default(policy), &spec);
            let r = sim.run().unwrap_or_else(|e| panic!("{policy}: {e}"));
            prop_assert_eq!(r.measurement.counters.instructions, expected);
            prop_assert!(r.measurement.wall_secs > 0.0);
            prop_assert!(r.measurement.system_joules() > 0.0);
            prop_assert!(r.measurement.dram_joules() > 0.0);
            // Begin/end balance: every opened period closed.
            prop_assert_eq!(r.rda.begins, r.rda.ends);
            // Everything paused was eventually resumed.
            prop_assert_eq!(r.rda.paused, r.rda.resumed);
        }
    }

    /// Gating can only reduce concurrent cache pressure: the strict
    /// policy never produces more LLC misses than the default policy.
    #[test]
    fn strict_never_misses_more_than_default(spec in arb_spec()) {
        let d = SystemSim::new(SimConfig::paper_default(PolicyKind::DefaultOnly), &spec)
            .run()
            .unwrap();
        let s = SystemSim::new(SimConfig::paper_default(PolicyKind::Strict), &spec)
            .run()
            .unwrap();
        // Allow 5 % slack for switch-warmup and accounting rounding.
        prop_assert!(
            s.measurement.counters.llc_misses as f64
                <= d.measurement.counters.llc_misses as f64 * 1.05 + 1e4,
            "strict {} vs default {}",
            s.measurement.counters.llc_misses,
            d.measurement.counters.llc_misses
        );
    }

    /// The energy accountant and the wall clock agree: average power is
    /// bounded by the machine's physical envelope.
    #[test]
    fn average_power_stays_within_the_envelope(spec in arb_spec()) {
        let r = SystemSim::new(SimConfig::paper_default(PolicyKind::compromise_default()), &spec)
            .run()
            .unwrap();
        let watts = r.measurement.energy.average_watts(r.measurement.wall_secs);
        // Static floor: idle package + DRAM background.
        prop_assert!(watts > 15.0, "implausibly low power {watts}");
        // Ceiling: full static load + generous dynamic margin.
        prop_assert!(watts < 180.0, "implausibly high power {watts}");
    }
}
