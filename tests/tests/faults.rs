//! Fault-model property tests: for arbitrary workloads, fault rates,
//! and seeds, the system degrades gracefully and recovers completely —
//! the monitor's books return to exactly zero once every process has
//! exited, no waitlist entry outlives its process, and faulty sweeps
//! stay bit-identical across seeds and thread counts.

use proptest::prelude::*;
use rda_core::{mb, DemandAudit, PolicyKind, Resource, SiteId};
use rda_machine::ReuseLevel;
use rda_sim::runner::{run_sweep_configured, RunnerOptions, SweepGrid};
use rda_sim::{FaultConfig, SimConfig, SystemSim};
use rda_workloads::spec::all_workloads;
use rda_workloads::{Phase, ProcessProgram, WorkloadSpec};

#[derive(Debug, Clone)]
struct ArbPhase {
    instr: u64,
    ws_tenth_mb: u64,
    tracked: bool,
}

fn arb_phase() -> impl Strategy<Value = ArbPhase> {
    (1_000_000u64..10_000_000, 1u64..120, any::<bool>()).prop_map(
        |(instr, ws_tenth_mb, tracked)| ArbPhase {
            instr,
            ws_tenth_mb,
            tracked,
        },
    )
}

fn build_spec(procs: Vec<(u8, Vec<ArbPhase>)>) -> WorkloadSpec {
    WorkloadSpec {
        name: "faulty-prop".into(),
        processes: procs
            .into_iter()
            .map(|(threads, phases)| ProcessProgram {
                threads: threads as usize,
                phases: phases
                    .into_iter()
                    .enumerate()
                    .map(|(k, p)| {
                        let ws = mb(p.ws_tenth_mb as f64 / 10.0);
                        if p.tracked {
                            Phase::tracked(
                                format!("p{k}"),
                                p.instr,
                                ws,
                                ReuseLevel::High,
                                SiteId(k as u32),
                            )
                        } else {
                            Phase::untracked(format!("p{k}"), p.instr, ws, ReuseLevel::Low)
                        }
                    })
                    .collect(),
            })
            .collect(),
    }
}

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    prop::collection::vec((1u8..4, prop::collection::vec(arb_phase(), 1..4)), 1..6)
        .prop_map(build_spec)
}

fn faulty_cfg(policy: PolicyKind, rate: f64, seed: u64) -> SimConfig {
    SimConfig::paper_default(policy)
        .with_demand_audit(DemandAudit::Clamp)
        .with_waitlist_timeout_ms(5.0)
        .with_faults(FaultConfig::uniform(rate))
        .with_jitter_seed(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// After ANY fault schedule — leaks, kills, double ends, lies — the
    /// monitor's nominal and overflow usage return to exactly zero once
    /// all processes have exited, every waitlist is empty, and no
    /// progress period outlives its process.
    #[test]
    fn books_return_to_zero_after_any_fault_schedule(
        spec in arb_spec(),
        rate in 0.0f64..0.5,
        seed in 0u64..1_000,
    ) {
        for policy in [PolicyKind::Strict, PolicyKind::compromise_default()] {
            let mut sim = SystemSim::new(faulty_cfg(policy, rate, seed), &spec);
            let r = sim.run().unwrap_or_else(|e| panic!("{policy}: {e}"));
            for res in Resource::ALL {
                prop_assert_eq!(sim.rda().usage(res), 0,
                    "{}/{}: nominal demand leaked", policy, res);
                prop_assert_eq!(sim.rda().overflow_usage(res), 0,
                    "{}/{}: overflow demand leaked", policy, res);
                prop_assert_eq!(sim.rda().waitlist_len(res), 0,
                    "{}/{}: a WaitEntry outlived its process", policy, res);
            }
            prop_assert_eq!(sim.rda().live_periods(), 0,
                "{}: a period outlived its process", policy);
            // Every opened period was closed exactly once: by an honest
            // end or by exit-time reclamation (rejected ends are calls,
            // not closures; double ends add calls on already-closed
            // periods).
            prop_assert!(
                r.rda.admitted + r.rda.resumed + r.rda.aged_admissions + r.rda.reclaimed
                    >= r.rda.begins,
                "{}: period lost without admission or reclamation", policy
            );
            // Protocol violations surface as typed errors; the internal
            // desync counter must never move, no matter the fault
            // schedule — kills mid-period, leaked and doubled ends all
            // route through the former panic sites in pp_end and
            // process_exit.
            prop_assert_eq!(r.rda.desyncs, 0,
                "{}: fault schedule tripped an internal desync", policy);
        }
    }

    /// Faulty runs are a pure function of the seed: same seed, same
    /// digest; and recovery work is actually happening at high rates.
    #[test]
    fn faulty_runs_reproduce_bit_identically(
        spec in arb_spec(),
        seed in 0u64..1_000,
    ) {
        let a = SystemSim::new(faulty_cfg(PolicyKind::Strict, 0.3, seed), &spec)
            .run()
            .unwrap();
        let b = SystemSim::new(faulty_cfg(PolicyKind::Strict, 0.3, seed), &spec)
            .run()
            .unwrap();
        prop_assert_eq!(a.digest(), b.digest());
    }
}

/// A faulty sweep over a real workload is bit-identical between one
/// worker thread and four — the per-cell fault plans derive from the
/// cell's own seed stream, never from execution order.
#[test]
fn faulty_sweeps_are_thread_count_invariant() {
    let specs = all_workloads();
    let grid = SweepGrid::cross(
        &specs[..1],
        &[PolicyKind::Strict, PolicyKind::compromise_default()],
        2,
    );
    let sweep = |threads| {
        run_sweep_configured(
            &grid,
            &RunnerOptions {
                threads,
                root_seed: 7,
                ..RunnerOptions::default()
            },
            |cell| {
                SimConfig::paper_default(cell.policy)
                    .with_demand_audit(DemandAudit::Clamp)
                    .with_waitlist_timeout_ms(5.0)
                    .with_faults(FaultConfig::uniform(0.15))
            },
        )
    };
    let one = sweep(1);
    let four = sweep(4);
    assert!(one.errors.is_empty(), "{:?}", one.errors);
    assert_eq!(one.digest(), four.digest());
    // The fault machinery really fired on this workload.
    let recoveries: u64 = one
        .records
        .iter()
        .map(|r| r.result.rda.reclaimed + r.result.rda.rejected_ends + r.result.rda.clamped)
        .sum();
    assert!(recoveries > 0, "fault schedule injected nothing");
    let desyncs: u64 = one.records.iter().map(|r| r.result.rda.desyncs).sum();
    assert_eq!(desyncs, 0, "faulty sweep tripped an internal desync");
}

/// The fault model's edge rates behave at sweep scale exactly as the
/// plan-level unit tests promise: rate 0.0 injects nothing (the sweep
/// digest matches a run with faults disabled entirely), rate 1.0
/// injects everywhere (every cell reports reclamation work), and both
/// extremes stay bit-identical between one worker thread and eight.
#[test]
fn edge_rate_sweeps_are_thread_count_invariant() {
    let specs = all_workloads();
    let grid = SweepGrid::cross(&specs[..1], &[PolicyKind::Strict], 2);
    let sweep = |threads: usize, faults: Option<FaultConfig>| {
        run_sweep_configured(
            &grid,
            &RunnerOptions {
                threads,
                root_seed: 11,
                ..RunnerOptions::default()
            },
            move |cell| {
                let cfg = SimConfig::paper_default(cell.policy)
                    .with_demand_audit(DemandAudit::Clamp)
                    .with_waitlist_timeout_ms(5.0);
                match faults {
                    Some(f) => cfg.with_faults(f),
                    None => cfg,
                }
            },
        )
    };
    // Rate 0.0: a plan full of honest phases is indistinguishable from
    // no plan at all, on any thread count.
    let zero_serial = sweep(1, Some(FaultConfig::uniform(0.0)));
    let zero_wide = sweep(8, Some(FaultConfig::uniform(0.0)));
    let clean = sweep(1, None);
    assert!(zero_serial.errors.is_empty(), "{:?}", zero_serial.errors);
    assert_eq!(zero_serial.digest(), zero_wide.digest());
    assert_eq!(
        zero_serial.digest(),
        clean.digest(),
        "rate 0.0 must be behaviourally identical to faults-off"
    );
    // Rate 1.0: every process is killed at its first phase, yet the
    // sweep still completes deterministically on any thread count.
    let full_serial = sweep(1, Some(FaultConfig::uniform(1.0)));
    let full_wide = sweep(8, Some(FaultConfig::uniform(1.0)));
    assert!(full_serial.errors.is_empty(), "{:?}", full_serial.errors);
    assert_eq!(full_serial.digest(), full_wide.digest());
    assert_ne!(full_serial.digest(), zero_serial.digest());
    for r in &full_serial.records {
        assert!(
            r.result.rda.reclaimed > 0,
            "rate 1.0 cell injected nothing: {}/{}",
            r.workload,
            r.policy
        );
        assert_eq!(r.result.rda.desyncs, 0);
    }
}

/// Degradation is graceful in the product sense: a moderately faulty
/// run still finishes, and still retires every instruction that the
/// surviving (unkilled) processes were due to execute — we check the
/// weaker, robust property that the run completes with nonzero work.
#[test]
fn moderate_faults_do_not_collapse_throughput() {
    let specs = all_workloads();
    let spec = &specs[0];
    let clean = SystemSim::new(
        SimConfig::paper_default(PolicyKind::Strict),
        spec,
    )
    .run()
    .unwrap();
    let faulty = SystemSim::new(faulty_cfg(PolicyKind::Strict, 0.1, 42), spec)
        .run()
        .unwrap();
    assert!(faulty.measurement.counters.instructions > 0);
    // Kills remove work, so faulty retires no more than clean.
    assert!(
        faulty.measurement.counters.instructions <= clean.measurement.counters.instructions,
        "faulty {} vs clean {}",
        faulty.measurement.counters.instructions,
        clean.measurement.counters.instructions
    );
}
