//! Golden-trace regression harness.
//!
//! A checked-in digest pins the exact behaviour of the full stack —
//! workload generation, CFS substrate, RDA gating, the analytical
//! machine model, and energy integration. Any change to simulated
//! behaviour (however subtle) flips the digest and fails this test,
//! turning silent behavioural drift into an explicit diff.
//!
//! If you changed the simulator *on purpose*, update the constant:
//! the failure message prints the new value.

use rda_sim::experiment::paper_policies;
use rda_sim::runner::{run_sweep, RunnerOptions, SweepGrid};
use rda_workloads::spec::all_workloads;

/// Expected digest of the golden grid below under root seed 42.
/// FNV-1a over every run's `RunResult::digest()` in grid order.
///
/// Updated for PR 2: `RunResult::digest()` now also hashes the four
/// recovery counters (`reclaimed`, `clamped`, `aged_admissions`,
/// `rejected_ends`); they are all zero on this clean grid, but their
/// presence in the hash stream changes the value. Run behaviour
/// (counters, energy, wall-clock) is unchanged from the seed.
///
/// Updated for PR 7: the hash stream gained the four overload-control
/// counters (`shed`, `expired`, `retried`, `breaker_trips`) — again
/// all zero on this grid (no `OverloadConfig`), so only the stream
/// shape changed, not run behaviour.
const GOLDEN_SWEEP_DIGEST: u64 = 0x90c9_83d2_3898_845c;

#[test]
fn golden_sweep_digest_is_stable() {
    // The cheapest real workload under all three paper policies: small
    // enough for CI, deep enough to cover every layer.
    let specs = all_workloads();
    let grid = SweepGrid::cross(&specs[..1], &paper_policies(), 1);
    let sweep = run_sweep(
        &grid,
        &RunnerOptions {
            root_seed: 42,
            ..RunnerOptions::default()
        },
    );
    assert!(sweep.errors.is_empty(), "{:?}", sweep.errors);
    let digest = sweep.digest();
    assert_eq!(
        digest, GOLDEN_SWEEP_DIGEST,
        "golden sweep digest changed: got {digest:#018x}, expected \
         {GOLDEN_SWEEP_DIGEST:#018x}. If the simulator's behaviour was \
         changed intentionally, update GOLDEN_SWEEP_DIGEST."
    );
}

/// The digest must also be insensitive to thread count (the golden
/// value would otherwise depend on the CI machine).
#[test]
fn golden_digest_is_thread_count_invariant() {
    let specs = all_workloads();
    let grid = SweepGrid::cross(&specs[..1], &paper_policies(), 1);
    let opts = |threads| RunnerOptions {
        threads,
        root_seed: 42,
        ..RunnerOptions::default()
    };
    let one = run_sweep(&grid, &opts(1));
    let three = run_sweep(&grid, &opts(3));
    assert_eq!(one.digest(), three.digest());
}
