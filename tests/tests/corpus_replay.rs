//! Replay every committed `.trace` file under `tests/corpus/` through
//! the differential oracle.
//!
//! The corpus is the project's bug museum: hand-written scenarios
//! covering each admission and rejection path, plus every shrunk
//! counterexample the fuzzer or the bounded explorer ever produced.
//! Each file must parse, survive a text round-trip, and replay with
//! zero divergence between `rda-core` and the reference model —
//! forever. To add an entry, paste the shrunk trace printed by a
//! failing `rda-check` test (or `explore` run) into a new `.trace`
//! file here.

//!
//! `corpus/topo/` holds the topology-dialect traces (multi-node,
//! multi-resource, layered); they replay through the topology oracle
//! ([`rda_check::replay_topo`]) the same way, and every *scalar* trace
//! additionally replays through the topology oracle via the
//! single-node compatibility lift ([`rda_check::lift`]).

use rda_check::{replay, replay_lifted, replay_topo, TopoDoc, TraceDoc};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

fn topo_corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir().join("topo"))
        .expect("tests/corpus/topo/ exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "trace"))
        .collect();
    files.sort();
    files
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus/ exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "trace"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_is_not_empty() {
    assert!(
        corpus_files().len() >= 5,
        "the corpus should cover at least the hand-written scenarios"
    );
}

#[test]
fn every_corpus_trace_replays_without_divergence() {
    for path in corpus_files() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc =
            TraceDoc::parse(&text).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
        assert!(!doc.events.is_empty(), "{name}: no events");
        // The serializer must be able to re-emit what it parsed.
        let reparsed = TraceDoc::parse(&doc.to_text())
            .unwrap_or_else(|e| panic!("{name}: round-trip failed: {e}"));
        assert_eq!(reparsed, doc, "{name}: round-trip changed the document");
        let report = replay(&doc).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(report.steps, doc.events.len(), "{name}");
    }
}

/// The hand-written scenarios that are *designed* to drain must end
/// with the books at zero — a corpus entry that silently stops
/// balancing would weaken the museum.
#[test]
fn draining_corpus_traces_end_idle() {
    for name in [
        "golden_sweep.trace",
        "unknown_end.trace",
        "double_end.trace",
        "end_while_waitlisted.trace",
        "audit_reject_overflow.trace",
        "compromise_aging_overflow.trace",
        "exit_reclaims_all.trace",
        "overload_shed_expire_breaker.trace",
    ] {
        let text = std::fs::read_to_string(corpus_dir().join(name)).unwrap();
        let doc = TraceDoc::parse(&text).unwrap();
        let report = replay(&doc).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            report.final_snapshot.is_idle(),
            "{name}: books did not return to zero: {:?}",
            report.final_snapshot
        );
    }
}

#[test]
fn every_topo_corpus_trace_replays_without_divergence_and_ends_idle() {
    let files = topo_corpus_files();
    assert!(files.len() >= 3, "the topology corpus has its three scenarios");
    for path in files {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = TopoDoc::parse(&text).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
        assert!(!doc.events.is_empty(), "{name}: no events");
        let reparsed = TopoDoc::parse(&doc.to_text())
            .unwrap_or_else(|e| panic!("{name}: round-trip failed: {e}"));
        assert_eq!(reparsed, doc, "{name}: round-trip changed the document");
        let report = replay_topo(&doc).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(report.steps, doc.events.len(), "{name}");
        assert!(
            report.final_snapshot.is_idle(),
            "{name}: per-node books did not return to zero: {:?}",
            report.final_snapshot
        );
    }
}

/// Every *scalar* corpus trace also replays divergence-free through the
/// topology oracle on its 1-node/1-resource compatibility lift — the
/// legacy corpus doubles as the topology engine's regression museum.
#[test]
fn every_scalar_corpus_trace_replays_through_the_topology_oracle() {
    for path in corpus_files() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = TraceDoc::parse(&text).unwrap();
        let report = replay_lifted(&doc).unwrap_or_else(|e| panic!("{name} (lifted): {e}"));
        assert_eq!(report.steps, doc.events.len(), "{name} (lifted)");
    }
}

/// The single-resource compatibility argument, byte for byte: the
/// hand-written topology-dialect `single_node_compat.trace` and the
/// *lifted* scalar `golden_sweep.trace` reach bit-identical final
/// snapshots (same digest), and the scalar replay of the same schedule
/// agrees on every lifecycle counter.
#[test]
fn single_node_compat_trace_matches_the_lifted_golden_sweep() {
    let topo_text =
        std::fs::read_to_string(corpus_dir().join("topo/single_node_compat.trace")).unwrap();
    let hand = replay_topo(&TopoDoc::parse(&topo_text).unwrap()).unwrap();

    let scalar_text = std::fs::read_to_string(corpus_dir().join("golden_sweep.trace")).unwrap();
    let scalar_doc = TraceDoc::parse(&scalar_text).unwrap();
    let lifted = replay_lifted(&scalar_doc).unwrap();
    assert_eq!(
        hand.final_snapshot.digest(),
        lifted.final_snapshot.digest(),
        "hand-written compat trace and lifted golden sweep must be bit-identical"
    );

    let scalar = replay(&scalar_doc).unwrap();
    let (s, t) = (scalar.final_snapshot.stats, lifted.final_snapshot.stats);
    assert_eq!(
        (s.begins, s.admitted, s.paused, s.resumed, s.ends),
        (t.begins, t.admitted, t.paused, t.resumed, t.ends),
        "scalar and topology engines must agree on the lifecycle counters"
    );
    assert!(lifted.final_snapshot.is_idle());
}
