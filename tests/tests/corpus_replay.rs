//! Replay every committed `.trace` file under `tests/corpus/` through
//! the differential oracle.
//!
//! The corpus is the project's bug museum: hand-written scenarios
//! covering each admission and rejection path, plus every shrunk
//! counterexample the fuzzer or the bounded explorer ever produced.
//! Each file must parse, survive a text round-trip, and replay with
//! zero divergence between `rda-core` and the reference model —
//! forever. To add an entry, paste the shrunk trace printed by a
//! failing `rda-check` test (or `explore` run) into a new `.trace`
//! file here.

use rda_check::{replay, TraceDoc};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus/ exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "trace"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_is_not_empty() {
    assert!(
        corpus_files().len() >= 5,
        "the corpus should cover at least the hand-written scenarios"
    );
}

#[test]
fn every_corpus_trace_replays_without_divergence() {
    for path in corpus_files() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc =
            TraceDoc::parse(&text).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
        assert!(!doc.events.is_empty(), "{name}: no events");
        // The serializer must be able to re-emit what it parsed.
        let reparsed = TraceDoc::parse(&doc.to_text())
            .unwrap_or_else(|e| panic!("{name}: round-trip failed: {e}"));
        assert_eq!(reparsed, doc, "{name}: round-trip changed the document");
        let report = replay(&doc).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(report.steps, doc.events.len(), "{name}");
    }
}

/// The hand-written scenarios that are *designed* to drain must end
/// with the books at zero — a corpus entry that silently stops
/// balancing would weaken the museum.
#[test]
fn draining_corpus_traces_end_idle() {
    for name in [
        "golden_sweep.trace",
        "unknown_end.trace",
        "double_end.trace",
        "end_while_waitlisted.trace",
        "audit_reject_overflow.trace",
        "compromise_aging_overflow.trace",
        "exit_reclaims_all.trace",
        "overload_shed_expire_breaker.trace",
    ] {
        let text = std::fs::read_to_string(corpus_dir().join(name)).unwrap();
        let doc = TraceDoc::parse(&text).unwrap();
        let report = replay(&doc).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            report.final_snapshot.is_idle(),
            "{name}: books did not return to zero: {:?}",
            report.final_snapshot
        );
    }
}
