//! Integration: the observability layer (`rda-trace`).
//!
//! Four claims are nailed down here:
//!
//! 1. Tracing is digest-neutral — for single runs (including faulty
//!    ones, property-tested over seeds/rates/policies) and for whole
//!    sweeps, serial and 8-threaded alike.
//! 2. A run recorded with both the RDA call log and the trace sink
//!    replays through `rda-check`'s `doc_from_calls` bridge with zero
//!    divergence, and the trace's own counters agree with the live
//!    extension's statistics.
//! 3. The Chrome trace-event export of a faulty sweep parses as valid
//!    JSON and carries every structural field a trace viewer needs.
//! 4. The export's *schema* — the set of event shapes it can emit — is
//!    pinned by a checked-in snapshot (`tests/corpus/trace_schema.json`);
//!    growing or reshaping the format is an explicit, reviewed diff.
//!    Regenerate with `UPDATE_TRACE_SCHEMA=1 cargo test -p rda-integration
//!    --test observability`.

use proptest::prelude::*;
use rda_bench::TraceBundle;
use rda_core::{mb, DemandAudit, PolicyKind, SiteId};
use rda_machine::ReuseLevel;
use rda_metrics::Json;
use rda_sim::experiment::paper_policies;
use rda_sim::runner::{run_sweep_configured, RunnerOptions, SweepGrid};
use rda_sim::{FaultConfig, SimConfig, SystemSim};
use rda_workloads::spec::all_workloads;
use rda_workloads::{Phase, ProcessProgram, WorkloadSpec};
use std::collections::BTreeSet;

/// A small contended workload: enough processes to force waitlisting
/// and aging, cheap enough for property testing.
fn small_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "obs".into(),
        processes: (0..6)
            .map(|i| ProcessProgram {
                threads: 1 + (i % 2),
                phases: vec![Phase::tracked(
                    "k",
                    4_000_000 + i as u64 * 500_000,
                    mb(4.0 + i as f64),
                    ReuseLevel::High,
                    SiteId(i as u32),
                )],
            })
            .collect(),
    }
}

fn faulty_cfg(policy: PolicyKind, rate: f64, seed: u64) -> SimConfig {
    SimConfig::paper_default(policy)
        .with_demand_audit(DemandAudit::Clamp)
        .with_waitlist_timeout_ms(2.0)
        .with_faults(FaultConfig::uniform(rate))
        .with_jitter_seed(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For arbitrary seeds, fault rates, and policies: (a) enabling
    /// tracing never changes `RunResult::digest()`, and (b) the same
    /// traced run, recorded call by call, replays through the reference
    /// model with zero divergence — so the trace describes exactly the
    /// run that happened.
    #[test]
    fn traced_faulty_runs_are_digest_neutral_and_replay_clean(
        seed in 0u64..1_000,
        rate in 0.0f64..0.4,
        policy_idx in 0usize..2,
    ) {
        let policy = [PolicyKind::Strict, PolicyKind::compromise_default()][policy_idx];
        let spec = small_spec();
        let plain = SystemSim::new(faulty_cfg(policy, rate, seed), &spec)
            .run()
            .unwrap();
        let mut sim = SystemSim::new(
            faulty_cfg(policy, rate, seed).with_rda_trace().with_trace(),
            &spec,
        );
        let traced = sim.run().unwrap();
        prop_assert_eq!(plain.digest(), traced.digest(), "tracing moved the digest");

        // Replay the recorded call log through the pure reference model.
        let doc = rda_check::doc_from_calls(sim.rda().config().clone(), sim.rda_calls());
        let report = rda_check::replay(&doc).unwrap();
        prop_assert_eq!(
            &report.final_snapshot,
            &sim.rda().snapshot(),
            "replayed state diverged from the live extension"
        );

        // The trace's derived counters agree with the extension's stats.
        let trace = traced.trace.expect("tracing was enabled");
        prop_assert_eq!(trace.counts.begins, traced.rda.begins);
        // `RdaStats::ends` counts every `pp_end` call; the trace's End
        // event only marks successful completions (a rejected end
        // records a Reject event instead).
        prop_assert_eq!(
            trace.counts.ends,
            traced.rda.ends - traced.rda.rejected_ends
        );
        prop_assert_eq!(trace.counts.aged, traced.rda.aged_admissions);
        prop_assert_eq!(trace.counts.resumes, traced.rda.resumed);
        // Every process exits exactly once (clean or killed).
        prop_assert_eq!(trace.counts.exits, spec.processes.len() as u64);
    }
}

/// Sweep-level digest neutrality: the same grid run untraced, traced
/// serially, and traced on 8 threads produces one digest.
#[test]
fn traced_sweeps_are_digest_neutral_and_thread_invariant() {
    let specs = all_workloads();
    let grid = SweepGrid::cross(&specs[..1], &paper_policies(), 1);
    let opts = |threads| RunnerOptions {
        threads,
        root_seed: 42,
        ..RunnerOptions::default()
    };
    let untraced = run_sweep_configured(&grid, &opts(1), |cell| {
        SimConfig::paper_default(cell.policy)
    });
    let traced_serial = run_sweep_configured(&grid, &opts(1), |cell| {
        SimConfig::paper_default(cell.policy).with_trace()
    });
    let traced_parallel = run_sweep_configured(&grid, &opts(8), |cell| {
        SimConfig::paper_default(cell.policy).with_trace()
    });
    assert!(untraced.errors.is_empty());
    assert_eq!(
        untraced.digest(),
        traced_serial.digest(),
        "tracing changed the sweep digest"
    );
    assert_eq!(
        traced_serial.digest(),
        traced_parallel.digest(),
        "traced sweep digest depends on thread count"
    );
    // And the traces themselves are a pure function of the cell, not of
    // the thread count.
    for (s, p) in traced_serial.records.iter().zip(&traced_parallel.records) {
        assert_eq!(s.result.trace, p.result.trace, "cell #{} trace diverged", s.index);
    }
}

/// Export a deterministic faulty sweep the way `exp_faults --trace-out`
/// does and collect the shared bundle + parsed document.
fn faulty_export() -> (TraceBundle, Json) {
    let specs = all_workloads();
    let grid = SweepGrid::cross(
        &specs[..1],
        &[PolicyKind::Strict, PolicyKind::compromise_default()],
        1,
    );
    let opts = RunnerOptions {
        threads: 1,
        root_seed: 42,
        ..RunnerOptions::default()
    };
    let sweep = run_sweep_configured(&grid, &opts, |cell| {
        SimConfig::paper_default(cell.policy)
            .with_demand_audit(DemandAudit::Clamp)
            .with_waitlist_timeout_ms(5.0)
            .with_faults(FaultConfig::uniform(0.25))
            .with_trace()
    });
    assert!(sweep.errors.is_empty(), "{:?}", sweep.errors);
    let mut bundle = TraceBundle::new();
    bundle.add_records("rate0.25:", &sweep.records);
    assert_eq!(bundle.len(), grid.len(), "every cell must carry a trace");
    let text = bundle.to_chrome_json().to_string_pretty();
    let parsed = Json::parse(&text).expect("export must be valid JSON");
    (bundle, parsed)
}

/// The faulty export loads as Chrome trace-event format: the required
/// top-level and per-event fields are all present and every event kind
/// the run produced is represented.
#[test]
fn faulty_sweep_export_loads_as_chrome_trace_format() {
    let (_, doc) = faulty_export();
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(events.len() > 100, "faulty sweep must produce a rich trace");
    for ev in events {
        for key in ["name", "ph", "ts", "pid", "tid"] {
            assert!(ev.get(key).is_some(), "event missing '{key}': {ev}");
        }
    }
    let phases: BTreeSet<&str> = events
        .iter()
        .filter_map(|e| e.get("ph").and_then(Json::as_str))
        .collect();
    for ph in ["M", "b", "e", "i", "C"] {
        assert!(phases.contains(ph), "no '{ph}' events in the export");
    }
    // Faults at rate 0.25 with Clamp + aging must surface rejects.
    assert!(
        events.iter().any(|e| e
            .get("name")
            .and_then(Json::as_str)
            .is_some_and(|n| n.starts_with("reject:"))),
        "faulty run produced no reject instants"
    );
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let meta = doc.get("metadata").expect("metadata");
    assert_eq!(meta.get("tool").and_then(Json::as_str), Some("rda-trace"));
    assert!(meta.get("freq_hz").and_then(Json::as_f64).unwrap() > 0.0);
}

/// Reduce a trace document to its schema: the sorted, deduplicated set
/// of event shapes (`ph`/`cat` plus the sorted key lists of the event
/// object and its `args`), and the document's top-level/metadata keys.
fn schema_of(doc: &Json) -> Json {
    let keys_of = |j: &Json| -> Json {
        match j {
            Json::Obj(map) => Json::Arr(
                map.keys()
                    .map(|k| Json::Str(k.clone()))
                    .collect(),
            ),
            _ => Json::Arr(vec![]),
        }
    };
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    let mut shapes: BTreeSet<String> = BTreeSet::new();
    for ev in events {
        let shape = Json::obj([
            (
                "ph",
                Json::Str(ev.get("ph").and_then(Json::as_str).unwrap().to_string()),
            ),
            (
                "cat",
                Json::Str(ev.get("cat").and_then(Json::as_str).unwrap().to_string()),
            ),
            ("keys", keys_of(ev)),
            ("args", keys_of(ev.get("args").unwrap_or(&Json::Null))),
        ]);
        shapes.insert(shape.to_string_compact());
    }
    Json::obj([
        ("document_keys", keys_of(doc)),
        (
            "metadata_keys",
            keys_of(doc.get("metadata").unwrap_or(&Json::Null)),
        ),
        (
            "event_shapes",
            Json::Arr(
                shapes
                    .into_iter()
                    .map(|s| Json::parse(&s).unwrap())
                    .collect(),
            ),
        ),
    ])
}

/// Golden snapshot of the export schema. A failure means the trace
/// format changed; review the diff and regenerate the corpus file with
/// `UPDATE_TRACE_SCHEMA=1`.
#[test]
fn export_schema_matches_the_golden_snapshot() {
    let (_, doc) = faulty_export();
    let schema = schema_of(&doc).to_string_pretty();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/corpus/trace_schema.json"
    );
    if std::env::var_os("UPDATE_TRACE_SCHEMA").is_some() {
        std::fs::write(path, &schema).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("tests/corpus/trace_schema.json missing — regenerate with UPDATE_TRACE_SCHEMA=1");
    assert_eq!(
        schema, golden,
        "trace export schema drifted from the golden snapshot; if the \
         change is intentional, rerun with UPDATE_TRACE_SCHEMA=1 and \
         review the corpus diff"
    );
}
