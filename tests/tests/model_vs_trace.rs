//! Integration: the analytical performance model against the
//! functional LRU cache hierarchy on real traces.
//!
//! The analytical model's coefficients are abstractions; these tests
//! check they agree *qualitatively* with exact trace replay: which
//! situations miss more, where contention appears, how capacity
//! pressure shifts hit rates.

use rda_machine::cache::CacheHierarchy;
use rda_machine::{AccessProfile, MachineConfig, PerfModel, ReuseLevel};
use rda_workloads::blas::level3::dgemm_traced;
use rda_workloads::splash::water;
use rda_workloads::trace::TraceRecorder;

fn replay_llc_miss_ratio(machine: &MachineConfig, addrs: &[u64]) -> f64 {
    let mut h = CacheHierarchy::new(machine);
    for &a in addrs {
        h.access(0, a);
    }
    let s = h.stats();
    if s.llc.accesses == 0 {
        0.0
    } else {
        s.llc.miss_ratio()
    }
}

fn trace_addrs(rec: &TraceRecorder) -> Vec<u64> {
    rec.take()
        .records()
        .iter()
        .filter_map(|r| r.address())
        .collect()
}

#[test]
fn fitting_working_set_hits_thrashing_set_misses() {
    // A small machine makes the contrast cheap to replay exactly.
    let m = MachineConfig::small_test(); // 4 MiB LLC
    let line = 64u64;

    // Loop 16× over 2 MiB (fits) vs over 16 MiB (thrashes).
    let walk = |bytes: u64| {
        let lines = bytes / line;
        let mut addrs = Vec::with_capacity((lines * 16) as usize);
        for _ in 0..16 {
            for i in 0..lines {
                addrs.push(i * line);
            }
        }
        addrs
    };
    let fit_miss = replay_llc_miss_ratio(&m, &walk(2 << 20));
    let thrash_miss = replay_llc_miss_ratio(&m, &walk(16 << 20));
    assert!(fit_miss < 0.15, "fit miss {fit_miss}");
    assert!(thrash_miss > 0.9, "thrash miss {thrash_miss}");

    // The analytical model must order the same way.
    let model = PerfModel::new(m);
    let fit_prof = AccessProfile::typical(2 << 20, ReuseLevel::High);
    let thrash_prof = AccessProfile::typical(16 << 20, ReuseLevel::High);
    let h_fit = model.llc_hit_rate(&fit_prof, fit_prof.ws_bytes);
    // A 16 MiB set on a 4 MiB cache has at most a quarter share.
    let h_thrash = model.llc_hit_rate(&thrash_prof, 4 << 20);
    assert!(h_fit > 0.9);
    assert!(h_thrash < 0.3, "model thrash hit {h_thrash}");
}

#[test]
fn corun_contention_appears_in_both_model_and_replay() {
    let m = MachineConfig::small_test(); // 4 MiB LLC, 4 cores
    let line = 64u64;
    let ws = 3u64 << 20; // 3 MiB each: one fits, two do not.
    let lines = ws / line;

    // Replay: interleave two cores walking disjoint 3 MiB regions.
    let mut h = CacheHierarchy::new(&m);
    for _ in 0..8 {
        for i in 0..lines {
            h.access(0, i * line);
            h.access(1, (1 << 30) + i * line);
        }
    }
    let duo_miss = h.stats().llc.miss_ratio();

    let mut h = CacheHierarchy::new(&m);
    for _ in 0..8 {
        for i in 0..lines {
            h.access(0, i * line);
        }
    }
    let solo_miss = h.stats().llc.miss_ratio();
    assert!(
        duo_miss > solo_miss + 0.3,
        "replay contention: solo {solo_miss} duo {duo_miss}"
    );

    // Model: proportional shares halve, hit rate collapses.
    let model = PerfModel::new(m);
    let prof = AccessProfile::typical(ws, ReuseLevel::High);
    let solo_rate = model.rates(&prof, prof.ws_bytes);
    let duo_share = model.llc_share(ws, 2 * ws);
    let duo_rate = model.rates(&prof, duo_share);
    assert!(
        duo_rate.cpi > solo_rate.cpi * 1.3,
        "model contention: solo {} duo {}",
        solo_rate.cpi,
        duo_rate.cpi
    );
    assert!(duo_rate.llc_mpi > solo_rate.llc_mpi * 2.0);
}

#[test]
fn real_dgemm_trace_is_cache_friendly_on_the_replay() {
    // dgemm n=48 touches ~55 KB: inside L1+L2 reach, so the exact
    // replay must show a tiny LLC load — consistent with the model's
    // "fits → high hit" regime that justifies Table 2's blocked
    // kernels fitting the LLC.
    let rec = TraceRecorder::new();
    dgemm_traced(48, &rec);
    let addrs = trace_addrs(&rec);
    let m = MachineConfig::xeon_e5_2420();
    let mut h = CacheHierarchy::new(&m);
    for &a in &addrs {
        h.access(0, a);
    }
    let s = h.stats();
    // Nearly everything is absorbed before the LLC.
    let llc_load = s.llc.accesses as f64 / s.l1.accesses as f64;
    assert!(llc_load < 0.05, "LLC sees {llc_load} of accesses");
}

#[test]
fn water_interf_trace_reuses_lines_heavily() {
    // The n² force phase re-reads every molecule per outer iteration;
    // the replayed L1 must show a high hit rate on a working set far
    // bigger than L1 — temporal reuse, exactly what `REUSE_HIGH`
    // declares for this phase.
    let rec = TraceRecorder::new();
    water::run_nsquared_traced(600, 0.4, &rec);
    let addrs = trace_addrs(&rec);
    let distinct: std::collections::HashSet<u64> = addrs.iter().map(|a| a / 64).collect();
    let footprint = distinct.len() as u64 * 64;
    let m = MachineConfig::xeon_e5_2420();
    assert!(footprint > m.l1_bytes, "footprint {footprint}");
    let mut h = CacheHierarchy::new(&m);
    for &a in &addrs {
        h.access(0, a);
    }
    let s = h.stats();
    assert!(
        s.l1.hit_ratio() > 0.8,
        "interf L1 hit ratio {}",
        s.l1.hit_ratio()
    );
}
