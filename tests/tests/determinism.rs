//! The tentpole guarantee of the sweep runner: results are a pure
//! function of (grid, root seed). Serial and multi-threaded executions
//! of the Figure 9 grid — and any shard decomposition — produce
//! bit-identical digests.

use rda_bench::headline::headline_grid;
use rda_sim::runner::{run_sweep, RunnerOptions, Shard, SweepGrid};
use rda_sim::experiment::paper_policies;
use rda_workloads::spec::all_workloads;

/// Serial vs 8-thread execution of the full headline (Figure 9) grid:
/// every per-run digest and the sweep digest must match bit-for-bit.
#[test]
fn figure9_grid_serial_vs_parallel_bit_identical() {
    let grid = headline_grid();
    let serial = run_sweep(&grid, &RunnerOptions::serial());
    let parallel = run_sweep(
        &grid,
        &RunnerOptions {
            threads: 8,
            ..RunnerOptions::default()
        },
    );
    assert!(serial.errors.is_empty(), "{:?}", serial.errors);
    assert!(parallel.errors.is_empty(), "{:?}", parallel.errors);
    assert_eq!(serial.records.len(), grid.len());
    for (s, p) in serial.records.iter().zip(&parallel.records) {
        assert_eq!(s.index, p.index);
        assert_eq!(
            s.digest, p.digest,
            "cell #{} ({} under {}) diverged between serial and parallel",
            s.index, s.workload, s.policy
        );
    }
    assert_eq!(serial.digest(), parallel.digest());
}

/// Shards of a grid recompose into exactly the unsharded sweep: the
/// per-cell streams depend on global grid indices, not on which
/// process runs them.
#[test]
fn sharded_sweep_recomposes_bit_identically() {
    // Two real workloads keep this case quick while still exercising
    // the whole stack.
    let specs = all_workloads();
    let grid = SweepGrid::cross(&specs[..2], &paper_policies(), 1);
    let full = run_sweep(&grid, &RunnerOptions::default());
    assert!(full.errors.is_empty(), "{:?}", full.errors);

    let mut merged = Vec::new();
    for index in 0..3 {
        let part = run_sweep(
            &grid,
            &RunnerOptions {
                shard: Some(Shard { index, count: 3 }),
                ..RunnerOptions::default()
            },
        );
        assert!(part.errors.is_empty(), "{:?}", part.errors);
        merged.extend(part.records);
    }
    merged.sort_by_key(|r| r.index);
    assert_eq!(merged.len(), full.records.len());
    for (m, f) in merged.iter().zip(&full.records) {
        assert_eq!(m.index, f.index);
        assert_eq!(m.digest, f.digest, "shard cell #{} diverged", m.index);
    }
}
