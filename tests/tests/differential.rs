//! Integration: the differential oracle (`rda-check`) against whole
//! simulated workloads and against every typed rejection path.
//!
//! Three claims are nailed down here:
//!
//! 1. A faulty end-to-end simulation, recorded call by call, replays
//!    through the pure reference model with zero divergence — and
//!    recording itself changes nothing about the run.
//! 2. Every `RdaError` variant a caller can provoke leaves the
//!    observable state bit-identical (modulo its rejection counter):
//!    rejected calls are reads, never writes.
//! 3. Exit-time reclamation composes with waitlist aging: admitted,
//!    waitlisted, and force-admitted-overflow periods of a dead process
//!    all return to zero.

use rda_check::{doc_from_calls, replay, Effect, Oracle, TraceEvent};
use rda_core::waitlist::{WaitEntry, Waitlist};
use rda_core::{mb, DemandAudit, PolicyKind, PpId, RdaError, Resource};
use rda_sim::{FaultConfig, SimConfig, SystemSim};
use rda_simcore::SimTime;
use rda_workloads::spec::all_workloads;

fn faulty_cfg(policy: PolicyKind) -> SimConfig {
    SimConfig::paper_default(policy)
        .with_demand_audit(DemandAudit::Clamp)
        .with_waitlist_timeout_ms(5.0)
        .with_faults(FaultConfig::uniform(0.25))
        .with_jitter_seed(97)
}

/// Recording the call log is observationally free: the run digest (and
/// therefore every simulated outcome) is bit-identical with it on.
#[test]
fn recording_rda_calls_changes_nothing() {
    let spec = &all_workloads()[0];
    let plain = SystemSim::new(faulty_cfg(PolicyKind::Strict), spec)
        .run()
        .unwrap();
    let mut sim = SystemSim::new(faulty_cfg(PolicyKind::Strict).with_rda_trace(), spec);
    let recorded = sim.run().unwrap();
    assert_eq!(plain.digest(), recorded.digest());
    assert!(!sim.rda_calls().is_empty(), "nothing was recorded");
}

/// The bridge test the tentpole hinges on: a whole faulty simulation —
/// demand lies, kills, double ends, aging — recorded and replayed
/// through the reference model, event for event, with the final
/// replayed state equal to the live extension's.
#[test]
fn recorded_faulty_simulation_replays_clean_through_the_model() {
    for policy in [PolicyKind::Strict, PolicyKind::compromise_default()] {
        let spec = &all_workloads()[0];
        let mut sim = SystemSim::new(faulty_cfg(policy).with_rda_trace(), spec);
        sim.run().unwrap_or_else(|e| panic!("{policy}: {e}"));
        let doc = doc_from_calls(sim.rda().config().clone(), sim.rda_calls());
        assert!(doc.events.len() > 10, "{policy}: trace too small to mean much");
        // The .trace text format must round-trip the recorded run.
        let reparsed = rda_check::TraceDoc::parse(&doc.to_text())
            .unwrap_or_else(|e| panic!("{policy}: {e}"));
        assert_eq!(reparsed, doc);
        let report = replay(&doc).unwrap_or_else(|e| panic!("{policy}: {e}"));
        assert_eq!(
            report.final_snapshot,
            sim.rda().snapshot(),
            "{policy}: replayed state differs from the live extension"
        );
    }
}

fn contended_oracle(audit: DemandAudit) -> Oracle {
    let mut cfg = rda_check::trace::default_config();
    cfg.policy = PolicyKind::Strict;
    cfg.llc_capacity = mb(15.0);
    cfg.demand_audit = audit;
    cfg.waitlist_timeout_cycles = Some(1_000);
    let mut oracle = Oracle::new(cfg);
    // One admitted period (pp 0) and one waitlisted period (pp 1).
    let begin = |t, process, amount| TraceEvent::Begin {
        t,
        process,
        site: process,
        resource: Resource::Llc,
        amount,
    };
    oracle.apply(&begin(0, 0, mb(10.0))).unwrap();
    assert!(matches!(
        oracle.apply(&begin(10, 1, mb(10.0))).unwrap(),
        Effect::Pause { .. }
    ));
    oracle
}

/// Apply `event`, assert it is rejected with `want`, and assert the
/// observable state did not move except for the rejection counters
/// (`rejected_ends` / `clamped`) and the call counters (`begins` /
/// `ends`) that tick on every call.
fn assert_pure_rejection(oracle: &mut Oracle, event: TraceEvent, want: RdaError) {
    let before = oracle.snapshot();
    match oracle.apply(&event).unwrap() {
        Effect::Rejected(got) => assert_eq!(got, want),
        other => panic!("{event:?} was not rejected: {other:?}"),
    }
    let after = oracle.snapshot();
    assert_eq!(
        before.without_stats(),
        after.without_stats(),
        "rejected {want:?} moved observable state"
    );
}

#[test]
fn unknown_pp_rejection_is_pure() {
    let mut oracle = contended_oracle(DemandAudit::Clamp);
    assert_pure_rejection(
        &mut oracle,
        TraceEvent::End { t: 20, pp: 99 },
        RdaError::UnknownPp(PpId(99)),
    );
}

#[test]
fn double_end_rejection_is_pure() {
    let mut oracle = contended_oracle(DemandAudit::Clamp);
    oracle.apply(&TraceEvent::End { t: 20, pp: 0 }).unwrap();
    // pp 1 resumed when pp 0 ended; end it too so the books are quiet,
    // then end pp 0 a second time.
    oracle.apply(&TraceEvent::End { t: 30, pp: 1 }).unwrap();
    assert_pure_rejection(
        &mut oracle,
        TraceEvent::End { t: 40, pp: 0 },
        RdaError::DoubleEnd(PpId(0)),
    );
}

#[test]
fn end_while_waitlisted_rejection_is_pure() {
    let mut oracle = contended_oracle(DemandAudit::Clamp);
    // pp 1 is waitlisted; a process paused on the kernel wait queue
    // cannot legally reach its end marker.
    assert_pure_rejection(
        &mut oracle,
        TraceEvent::End { t: 20, pp: 1 },
        RdaError::EndWhileWaitlisted(PpId(1)),
    );
}

#[test]
fn demand_overflow_rejection_is_pure() {
    let mut oracle = contended_oracle(DemandAudit::Reject);
    assert_pure_rejection(
        &mut oracle,
        TraceEvent::Begin {
            t: 20,
            process: 2,
            site: 2,
            resource: Resource::Llc,
            amount: mb(99.0),
        },
        RdaError::DemandOverflow {
            resource: Resource::Llc,
            declared: mb(99.0),
            capacity: mb(15.0),
        },
    );
}

/// `DoubleWaitlist` is unreachable through the public extension API (a
/// waitlisted period cannot re-enter `pp_begin`), so the guard is
/// checked at the data-structure level: the duplicate push is rejected
/// and the queue is untouched.
#[test]
fn double_waitlist_rejection_is_pure() {
    let mut wl = Waitlist::new();
    let entry = WaitEntry {
        pp: PpId(7),
        accounted: 123,
        enqueued_at: SimTime::from_cycles(5),
    };
    wl.push(Resource::Llc, entry).unwrap();
    assert_eq!(
        wl.push(
            Resource::Llc,
            WaitEntry {
                accounted: 456, // even with different metadata
                ..entry
            }
        ),
        Err(RdaError::DoubleWaitlist(PpId(7)))
    );
    assert_eq!(wl.len(Resource::Llc), 1);
    assert_eq!(wl.front(Resource::Llc), Some(entry));
}

/// Satellite: `process_exit` composes with waitlist aging. A process
/// holding a nominally admitted period, a force-admitted overflow
/// period (aged past the timeout), and a still-waitlisted period dies —
/// all three accounting buckets return to exactly what the survivors
/// hold.
#[test]
fn exit_reclaims_admitted_waitlisted_and_overflow_periods() {
    let mut cfg = rda_check::trace::default_config();
    cfg.policy = PolicyKind::Strict;
    cfg.llc_capacity = 16_000;
    cfg.waitlist_timeout_cycles = Some(1_000);
    let mut oracle = Oracle::new(cfg);
    let begin = |t, process, site, amount| TraceEvent::Begin {
        t,
        process,
        site,
        resource: Resource::Llc,
        amount,
    };
    // pp 0 (proc 0, 8k) and pp 1 (proc 1, 7k) admit nominally.
    assert!(matches!(
        oracle.apply(&begin(0, 0, 0, 8_000)).unwrap(),
        Effect::Run { .. }
    ));
    assert!(matches!(
        oracle.apply(&begin(10, 1, 1, 7_000)).unwrap(),
        Effect::Run { .. }
    ));
    // pp 2 (proc 0, 12k) and pp 3 (proc 0, 6k) both pause: 15k used.
    assert!(matches!(
        oracle.apply(&begin(20, 0, 2, 12_000)).unwrap(),
        Effect::Pause { .. }
    ));
    assert!(matches!(
        oracle.apply(&begin(900, 0, 3, 6_000)).unwrap(),
        Effect::Pause { .. }
    ));
    // At t=1100 only pp 2 (enqueued t=20) has aged past the 1000-cycle
    // timeout; it force-admits to the overflow bucket. pp 3 (t=900)
    // still waits.
    match oracle.apply(&TraceEvent::Age { t: 1_100 }).unwrap() {
        Effect::Woken { resumed, .. } => assert_eq!(resumed.len(), 1),
        other => panic!("{other:?}"),
    }
    let mid = oracle.snapshot();
    assert_eq!(mid.usage[0], 15_000);
    assert_eq!(mid.overflow[0], 12_000);
    assert_eq!(mid.waitlists[0].len(), 1);
    // Process 0 dies holding all three kinds of period.
    oracle
        .apply(&TraceEvent::Exit {
            t: 1_200,
            process: 0,
        })
        .unwrap();
    let after = oracle.snapshot();
    assert_eq!(after.usage[0], 7_000, "only the survivor's demand remains");
    assert_eq!(after.overflow[0], 0, "force-admitted period reclaimed");
    assert!(after.waitlists[0].is_empty(), "waitlisted period cancelled");
    assert_eq!(after.stats.reclaimed, 3);
    // The survivor ends; everything is zero again.
    oracle.apply(&TraceEvent::End { t: 1_300, pp: 1 }).unwrap();
    assert!(oracle.snapshot().is_idle());
}

/// The oracle's per-step `check_invariants` call is what covers
/// `RdaError::InvariantViolation`: it cannot be provoked through the
/// public API (that is the point), so here we only pin down that a
/// heavily exercised extension reports none.
#[test]
fn invariants_hold_after_heavy_traffic() {
    let mut oracle = contended_oracle(DemandAudit::Clamp);
    for t in 0..40u64 {
        let _ = oracle.apply(&TraceEvent::Begin {
            t: 20 + t * 13,
            process: (t % 5) as u32,
            site: (t % 3) as u32,
            resource: Resource::Llc,
            amount: mb(1.0) * (t % 7),
        });
        let _ = oracle.apply(&TraceEvent::End {
            t: 21 + t * 13,
            pp: t % 9,
        });
    }
    oracle.ext().check_invariants().unwrap();
}

// ---------------------------------------------------------------------
// Registry differential: the slab-arena `PpRegistry` against the
// `BTreeMap` reference implementation it replaced. Arbitrary schedules
// of register / mutate / complete / process-exit reclamation must leave
// both with identical observable state after every single step —
// including id-order iteration, which the snapshot digest depends on.
// ---------------------------------------------------------------------

mod registry_differential {
    use proptest::prelude::*;
    use rda_core::registry::{reference::BTreeRegistry, PpRegistry};
    use rda_core::{mb, PpDemand, PpId, Resource, SiteId};
    use rda_machine::ReuseLevel;
    use rda_sched::ProcessId;
    use rda_simcore::SimTime;

    /// One step of a schedule. Id-bearing ops pick from the ids ever
    /// allocated via an index draw, so they hit live ids, completed ids
    /// (double completes), and — via the `+ 3` slack — ids never
    /// allocated at all.
    #[derive(Debug, Clone)]
    enum Op {
        Register {
            process: u32,
            site: u32,
            llc: bool,
            ws_tenth_mb: u64,
            accounted: u64,
            admitted: bool,
            at: u64,
        },
        Complete {
            pick: usize,
        },
        /// Fault-style mutation on a live record: flip admission (what
        /// waitlist admission does) or mark overflow (what aging does).
        Mutate {
            pick: usize,
            set_admitted: bool,
            set_overflow: bool,
        },
        /// Exit-time reclamation: complete every live period of one
        /// process, in id order, exactly as `process_exit` does.
        ExitProcess {
            process: u32,
        },
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            4 => ((0u32..6, 0u32..4, any::<bool>(), 1u64..200),
                  (0u64..50_000_000, any::<bool>(), 0u64..1_000_000))
                .prop_map(|((process, site, llc, ws_tenth_mb), (accounted, admitted, at))| {
                    Op::Register { process, site, llc, ws_tenth_mb, accounted, admitted, at }
                }),
            3 => (0usize..64).prop_map(|pick| Op::Complete { pick }),
            2 => (0usize..64, any::<bool>(), any::<bool>())
                .prop_map(|(pick, set_admitted, set_overflow)| {
                    Op::Mutate { pick, set_admitted, set_overflow }
                }),
            1 => (0u32..6).prop_map(|process| Op::ExitProcess { process }),
        ]
    }

    /// Full observable state must agree: counts, allocation history,
    /// per-id lookup, and iteration *order*.
    fn assert_equivalent(arena: &PpRegistry, model: &BTreeRegistry) {
        assert_eq!(arena.len(), model.len());
        assert_eq!(arena.is_empty(), model.is_empty());
        assert_eq!(arena.allocated(), model.allocated());
        let a: Vec<_> = arena.iter().copied().collect();
        let b: Vec<_> = model.iter().copied().collect();
        assert_eq!(a, b, "iteration order or contents diverged");
        for id in 0..arena.allocated() + 3 {
            let id = PpId(id);
            assert_eq!(arena.was_allocated(id), model.was_allocated(id));
            assert_eq!(arena.get(id), model.get(id), "lookup diverged at {id}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn arena_registry_matches_btree_reference(ops in prop::collection::vec(arb_op(), 1..80)) {
            let mut arena = PpRegistry::new();
            let mut model = BTreeRegistry::new();
            for op in &ops {
                match *op {
                    Op::Register { process, site, llc, ws_tenth_mb, accounted, admitted, at } => {
                        let ws = mb(ws_tenth_mb as f64 / 10.0);
                        let demand = if llc {
                            PpDemand::llc(ws, ReuseLevel::High)
                        } else {
                            PpDemand {
                                resource: Resource::MemBandwidth,
                                amount: ws,
                                reuse: ReuseLevel::Low,
                            }
                        };
                        let now = SimTime::from_cycles(at);
                        let a = arena.register(
                            ProcessId(process), SiteId(site), demand, accounted, admitted, now);
                        let b = model.register(
                            ProcessId(process), SiteId(site), demand, accounted, admitted, now);
                        prop_assert_eq!(a, b, "id allocation diverged");
                    }
                    Op::Complete { pick } => {
                        // Reaches live, completed, and never-allocated ids.
                        let id = PpId((pick as u64) % (arena.allocated() + 3));
                        prop_assert_eq!(arena.complete(id), model.complete(id));
                    }
                    Op::Mutate { pick, set_admitted, set_overflow } => {
                        let id = PpId((pick as u64) % (arena.allocated() + 3));
                        let a = arena.get_mut(id).map(|r| {
                            r.admitted = set_admitted;
                            r.overflow = set_overflow;
                            *r
                        });
                        let b = model.get_mut(id).map(|r| {
                            r.admitted = set_admitted;
                            r.overflow = set_overflow;
                            *r
                        });
                        prop_assert_eq!(a, b);
                    }
                    Op::ExitProcess { process } => {
                        let live: Vec<PpId> = arena
                            .iter()
                            .filter(|r| r.process == ProcessId(process))
                            .map(|r| r.id)
                            .collect();
                        for id in live {
                            prop_assert_eq!(arena.complete(id), model.complete(id));
                        }
                    }
                }
                assert_equivalent(&arena, &model);
            }
        }
    }
}
