//! Open-system overload control, end to end: the deterministic traffic
//! engine drives the extension into sustained overload (with faults
//! composed on top), the exact call sequence is recorded, and the whole
//! schedule replays through the `rda-check` differential oracle with
//! zero divergence — the acceptance gate of the overload subsystem.

use rda_check::{doc_from_calls, replay};
use rda_core::{mb, BreakerConfig, OverloadConfig, PolicyKind, RdaConfig, ShedPolicy};
use rda_machine::MachineConfig;
use rda_sim::{FaultConfig, TrafficConfig, TrafficSim};

fn rda_with(policy: ShedPolicy) -> RdaConfig {
    RdaConfig::for_machine(&MachineConfig::xeon_e5_2420(), PolicyKind::Strict).with_overload(
        OverloadConfig {
            waitlist_cap: 8,
            shed_policy: policy,
            deadline_cycles: Some(30_000_000),
            breaker: Some(BreakerConfig {
                high_water: mb(14.0),
                low_water: mb(8.0),
                trip_after: 3,
                recover_after: 3,
                shed_min_demand: mb(1.0),
            }),
        },
    )
}

/// A sustained 10×-capacity run with every fault class active, under
/// each shedding policy, replays call-for-call against the reference
/// model: every shed, expiry, retry, breaker trip, and fault-driven
/// reclamation the implementation performed is re-derived identically.
#[test]
fn recorded_overload_fault_schedules_replay_with_zero_divergence() {
    for policy in [
        ShedPolicy::RejectNewest,
        ShedPolicy::RejectOldest,
        ShedPolicy::DegradeToOverflow,
    ] {
        let rda = rda_with(policy);
        let mut traffic = TrafficConfig::web_default(15_000.0, 0.05);
        traffic.record_calls = true;
        let sim = TrafficSim::new(traffic, rda.clone()).with_faults(FaultConfig::uniform(0.1));
        let result = sim.run(7);
        assert!(
            result.rda.shed > 0,
            "{policy:?}: overload run never shed — the schedule exercises nothing"
        );
        assert!(result.retries > 0, "{policy:?}: no retries recorded");

        let calls = result.calls.expect("record_calls was set");
        let doc = doc_from_calls(rda, &calls);
        let report = replay(&doc).unwrap_or_else(|d| panic!("{policy:?}: diverged: {d}"));
        assert_eq!(report.steps, doc.events.len(), "{policy:?}");
    }
}

/// The recorded schedule is itself a pure function of the seed: two
/// recordings of the same run are event-for-event identical, and the
/// trace document round-trips through its own text format.
#[test]
fn recorded_schedules_are_deterministic_and_round_trip() {
    let rda = rda_with(ShedPolicy::RejectOldest);
    let mut traffic = TrafficConfig::web_default(10_000.0, 0.02);
    traffic.record_calls = true;
    let sim = TrafficSim::new(traffic, rda.clone()).with_faults(FaultConfig::uniform(0.2));
    let a = doc_from_calls(rda.clone(), &sim.run(3).calls.unwrap());
    let b = doc_from_calls(rda, &sim.run(3).calls.unwrap());
    assert_eq!(a, b, "same seed must record the same schedule");
    let reparsed = rda_check::TraceDoc::parse(&a.to_text()).expect("round-trip parse");
    assert_eq!(reparsed, a, "text round-trip changed the schedule");
    replay(&a).expect("recorded schedule replays clean");
}

/// Deadline expiry surfaces end to end: with a deadline shorter than
/// the queue drain time, overload produces expired requests, and the
/// replayed model agrees on the exact count.
#[test]
fn deadline_expiries_match_between_engine_and_model() {
    let mut rda = rda_with(ShedPolicy::RejectNewest);
    if let Some(o) = &mut rda.overload {
        o.deadline_cycles = Some(4_000_000); // ~2 ms: tighter than p95
        o.breaker = None;
    }
    let mut traffic = TrafficConfig::web_default(12_000.0, 0.03);
    traffic.record_calls = true;
    let sim = TrafficSim::new(traffic, rda.clone());
    let result = sim.run(11);
    assert!(
        result.expired > 0,
        "tight deadline under overload must expire waiters: {result:?}"
    );
    assert_eq!(result.expired, result.rda.expired);
    let doc = doc_from_calls(rda, &result.calls.unwrap());
    let report = replay(&doc).expect("replays clean");
    assert_eq!(report.steps, doc.events.len());
}
