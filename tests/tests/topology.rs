//! End-to-end verification of the multi-resource NUMA topology engine:
//! recorded open-system schedules replayed through the topology
//! reference model, property tests over arbitrary fault+overload
//! configurations, thread-invariant sweep digests, and the
//! cross-engine compatibility argument (scalar vs 1-node topology).

use proptest::prelude::*;
use rda_check::{replay, replay_lifted, topo_doc_from_calls, GenParams, TopoEffect};
use rda_core::{
    BreakerConfig, Demand, LayerId, LayerSet, LayerSpec, OverloadConfig, PolicyKind, ResourceKind,
    ShedPolicy, TopoConfig, TopoSpec,
};
use rda_sim::{
    run_topo_cells, topo_sweep_digest, FaultConfig, TopoCall, TopoCell, TopoClass,
    TopoTrafficConfig, TopoTrafficSim,
};

const SHED_POLICIES: [ShedPolicy; 3] = [
    ShedPolicy::RejectNewest,
    ShedPolicy::RejectOldest,
    ShedPolicy::DegradeToOverflow,
];

/// A two-node, three-resource box with a guaranteed latency layer —
/// the satellite's canonical "2-node/3-resource" shape.
fn two_node_three_resource(shed: ShedPolicy) -> TopoConfig {
    let layers = LayerSet::new(vec![
        LayerSpec::new("batch", PolicyKind::Strict),
        LayerSpec::new("latency", PolicyKind::Strict)
            .with_guarantee(Demand::new(4 << 20, 1_000, 64 << 20)),
    ]);
    TopoConfig::new(
        TopoSpec::uniform(2, 15_360 << 10, 6_000, 1 << 30),
        layers,
    )
    .with_waitlist_timeout_cycles(40_000_000)
    .with_overload(OverloadConfig {
        waitlist_cap: 8,
        shed_policy: shed,
        deadline_cycles: Some(30_000_000),
        breaker: Some(BreakerConfig {
            high_water: 14 << 20,
            low_water: 8 << 20,
            trip_after: 3,
            recover_after: 3,
            shed_min_demand: 1 << 20,
        }),
    })
}

/// Traffic whose demand vectors touch all three resource kinds.
fn three_resource_traffic(rate_per_sec: f64, duration_secs: f64) -> TopoTrafficConfig {
    let mut t = TopoTrafficConfig::two_tenant(rate_per_sec, duration_secs);
    t.classes = vec![
        TopoClass {
            demand: Demand::new(2 << 20, 400, 64 << 20),
            weight: 0.5,
            layer: LayerId(0),
        },
        TopoClass {
            demand: Demand::new(512 << 10, 900, 16 << 20),
            weight: 0.3,
            layer: LayerId(1),
        },
        TopoClass {
            demand: Demand::new(8 << 20, 1_500, 256 << 20),
            weight: 0.2,
            layer: LayerId(0),
        },
    ];
    t
}

/// Rebuild the post-assignment configuration a recorded run executed
/// under: the driver materialises per-class layers as per-process
/// assignments, and every request's first `Begin` carries its site.
fn assigned_config(
    mut cfg: TopoConfig,
    classes: &[TopoClass],
    calls: &[TopoCall],
) -> TopoConfig {
    for call in calls {
        if let TopoCall::Begin { process, site, .. } = *call {
            let layer = classes[site.0 as usize].layer;
            if layer != LayerId(0) {
                cfg.layers.assign(process.0, layer);
            }
        }
    }
    cfg
}

/// The acceptance gate: recorded multi-node overload+fault schedules
/// replay call-for-call through the topology reference model with zero
/// divergence, under every shed policy.
#[test]
fn recorded_topo_overload_fault_schedules_replay_with_zero_divergence() {
    for shed in SHED_POLICIES {
        let mut traffic = three_resource_traffic(15_000.0, 0.05);
        traffic.record_calls = true;
        let classes = traffic.classes.clone();
        let topo = two_node_three_resource(shed);
        let sim = TopoTrafficSim::new(traffic, topo.clone())
            .with_faults(FaultConfig::uniform(0.08));
        let result = sim.run(17);
        assert!(result.rda.shed > 0, "{shed:?}: schedule never overloaded");
        let calls = result.calls.expect("record_calls retains the schedule");
        let doc = topo_doc_from_calls(assigned_config(topo, &classes, &calls), &calls);
        let report = rda_check::replay_topo(&doc)
            .unwrap_or_else(|d| panic!("{shed:?}: diverged: {d}"));
        assert_eq!(report.steps, doc.events.len(), "{shed:?}");
        assert!(
            report.final_snapshot.is_idle(),
            "{shed:?}: drained schedule must end idle"
        );
        assert!(
            report
                .effects
                .iter()
                .any(|e| matches!(e, TopoEffect::Pause { .. })),
            "{shed:?}: schedule never queued — not an overload test"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite 1, first half: for arbitrary fault+overload schedules
    /// on 2-node/3-resource topologies, all per-node books return to
    /// exactly zero after drain (and the engine's internal invariants
    /// hold throughout — checked inside the run).
    #[test]
    fn arbitrary_fault_overload_schedules_drain_to_zero(
        seed in 0u64..1_000_000,
        rate in 2_000.0f64..25_000.0,
        fault_rate in 0.0f64..0.25,
        shed_idx in 0usize..3,
    ) {
        let traffic = three_resource_traffic(rate, 0.02);
        let mut sim = TopoTrafficSim::new(
            traffic,
            two_node_three_resource(SHED_POLICIES[shed_idx]),
        );
        if fault_rate > 0.0 {
            sim = sim.with_faults(FaultConfig::uniform(fault_rate));
        }
        let r = sim.run(seed);
        prop_assert!(
            r.drained_idle,
            "books must return to exactly zero after drain: {r:?}"
        );
        prop_assert_eq!(
            r.completed + r.failed + r.expired + r.killed + r.stranded,
            r.arrivals
        );
    }

    /// Satellite 1, second half: sweep digests are bit-identical
    /// serial vs 8 threads for arbitrary root seeds.
    #[test]
    fn sweep_digests_are_bit_identical_serial_vs_eight_threads(
        root_seed in 0u64..1_000_000,
    ) {
        let cells: Vec<TopoCell> = SHED_POLICIES
            .iter()
            .enumerate()
            .map(|(i, &shed)| TopoCell {
                label: format!("cell{i}"),
                traffic: three_resource_traffic(12_000.0, 0.02),
                topo: two_node_three_resource(shed),
                faults: (i % 2 == 0).then(|| FaultConfig::uniform(0.1)),
            })
            .collect();
        let serial = topo_sweep_digest(&run_topo_cells(&cells, 1, root_seed));
        let eight = topo_sweep_digest(&run_topo_cells(&cells, 8, root_seed));
        prop_assert_eq!(serial, eight);
    }

    /// The cross-engine compatibility argument on random schedules: a
    /// scalar trace and its 1-node/1-resource lift agree on every
    /// lifecycle counter (fast-path counters excluded — the topology
    /// engine has no memoised fast path) and on the final LLC books.
    #[test]
    fn random_scalar_schedules_agree_with_their_topology_lift(seed in 0u64..1_000_000) {
        let mut doc = rda_check::random_doc(seed, &GenParams::default());
        // Compromise/Partitioned round their slack differently between
        // the i128 scalar predicate and the u64 vector predicate;
        // Strict is the exactly-shared subset.
        doc.cfg.policy = PolicyKind::Strict;
        let scalar = replay(&doc).unwrap_or_else(|d| panic!("scalar diverged: {d}"));
        let lifted = replay_lifted(&doc).unwrap_or_else(|d| panic!("lift diverged: {d}"));
        let (s, t) = (scalar.final_snapshot.stats, lifted.final_snapshot.stats);
        prop_assert_eq!(
            (s.begins, s.admitted, s.paused, s.resumed, s.ends, s.reclaimed),
            (t.begins, t.admitted, t.paused, t.resumed, t.ends, t.reclaimed)
        );
        prop_assert_eq!(
            (s.shed, s.expired, s.aged_admissions, s.rejected_ends, s.clamped),
            (t.shed, t.expired, t.aged_admissions, t.rejected_ends, t.clamped)
        );
        let llc = rda_core::Resource::Llc as usize;
        let topo_llc = ResourceKind::Llc as usize;
        prop_assert_eq!(
            scalar.final_snapshot.usage[llc],
            lifted.final_snapshot.usage[0][topo_llc],
            "final LLC books must match"
        );
        prop_assert_eq!(
            scalar.final_snapshot.overflow[llc],
            lifted.final_snapshot.overflow[0][topo_llc],
            "final overflow books must match"
        );
    }
}
