//! End-to-end integration: the paper's qualitative claims hold on the
//! full stack (Table 2 workloads → simulator → measurements).

use rda_core::PolicyKind;
use rda_sim::experiment::{headline_figures, run_policy, run_workload};
use rda_workloads::spec;

fn gflops(spec: &rda_workloads::WorkloadSpec, policy: PolicyKind) -> f64 {
    run_policy(spec, policy).result.measurement.gflops()
}

fn joules(spec: &rda_workloads::WorkloadSpec, policy: PolicyKind) -> f64 {
    run_policy(spec, policy).result.measurement.system_joules()
}

#[test]
fn raytrace_strict_beats_default_substantially() {
    // The paper's best case: 1.88× speedup, −47 % energy.
    let spec = spec::raytrace();
    let g_default = gflops(&spec, PolicyKind::DefaultOnly);
    let g_strict = gflops(&spec, PolicyKind::Strict);
    let speedup = g_strict / g_default;
    assert!(
        (1.4..3.0).contains(&speedup),
        "raytrace strict speedup {speedup}"
    );
    let j_default = joules(&spec, PolicyKind::DefaultOnly);
    let j_strict = joules(&spec, PolicyKind::Strict);
    assert!(
        j_strict < 0.7 * j_default,
        "energy: strict {j_strict} vs default {j_default}"
    );
}

#[test]
fn water_nsq_strict_saves_half_the_energy() {
    // The paper's max energy decrease (48 %) came from water_nsquared
    // under RDA:Strict.
    let spec = spec::water_nsq();
    let j_default = joules(&spec, PolicyKind::DefaultOnly);
    let j_strict = joules(&spec, PolicyKind::Strict);
    let decrease = 1.0 - j_strict / j_default;
    assert!(
        (0.30..0.75).contains(&decrease),
        "water_nsq energy decrease {decrease}"
    );
}

#[test]
fn water_nsq_strict_beats_compromise() {
    // §4.2: "the performance of the workload … increase[s] by 1.47x
    // when scheduled via the strict policy in comparison to the
    // compromise configuration" (water_nsquared).
    let spec = spec::water_nsq();
    let g_strict = gflops(&spec, PolicyKind::Strict);
    let g_comp = gflops(&spec, PolicyKind::compromise_default());
    let ratio = g_strict / g_comp;
    assert!((1.2..2.2).contains(&ratio), "strict/compromise {ratio}");
}

#[test]
fn low_reuse_workloads_gain_nothing_from_gating() {
    // BLAS-1 and water_spatial: the paper reports RDA at or slightly
    // below the default policy. Require the gap to stay small in
    // either direction — gating must not matter here.
    for spec in [spec::blas1(), spec::water_sp()] {
        let g_default = gflops(&spec, PolicyKind::DefaultOnly);
        let g_strict = gflops(&spec, PolicyKind::Strict);
        let ratio = g_strict / g_default;
        assert!(
            (0.85..1.15).contains(&ratio),
            "{}: strict/default {ratio} — low-reuse must be ~neutral",
            spec.name
        );
    }
}

#[test]
fn blas3_gating_cuts_dram_energy_hard() {
    // Figure 8's strongest contrast: BLAS-3 DRAM energy collapses
    // under strict gating (LLC hits replace DRAM transfers).
    let spec = spec::blas3();
    let d = run_policy(&spec, PolicyKind::DefaultOnly);
    let s = run_policy(&spec, PolicyKind::Strict);
    assert!(
        s.result.measurement.dram_joules() < 0.6 * d.result.measurement.dram_joules(),
        "dram energy: strict {} vs default {}",
        s.result.measurement.dram_joules(),
        d.result.measurement.dram_joules()
    );
    // Mechanism check: fewer LLC misses, not just shorter runtime.
    assert!(
        s.result.measurement.counters.llc_misses < d.result.measurement.counters.llc_misses / 2
    );
}

#[test]
fn compromise_sits_between_default_and_strict_on_admissions() {
    let spec = spec::volrend();
    let s = run_policy(&spec, PolicyKind::Strict);
    let c = run_policy(&spec, PolicyKind::compromise_default());
    let d = run_policy(&spec, PolicyKind::DefaultOnly);
    assert!(c.result.rda.paused < s.result.rda.paused);
    assert_eq!(d.result.rda.paused, 0);
}

#[test]
fn headline_figures_cover_the_full_grid() {
    let runs = run_workload(&spec::ocean_cp());
    let figs = headline_figures(&runs);
    assert_eq!(figs.len(), 4);
    for f in &figs {
        assert_eq!(f.series.len(), 3, "{}", f.id);
        for s in &f.series {
            assert!(s.points.iter().all(|&(_, v)| v.is_finite() && v > 0.0));
        }
    }
}

#[test]
fn full_stack_runs_are_reproducible() {
    let spec = spec::water_nsq();
    let a = run_policy(&spec, PolicyKind::Strict);
    let b = run_policy(&spec, PolicyKind::Strict);
    assert_eq!(a.result.measurement.counters, b.result.measurement.counters);
    assert_eq!(a.result.measurement.wall_secs, b.result.measurement.wall_secs);
    assert_eq!(a.result.rda, b.result.rda);
}

#[test]
fn every_workload_completes_under_every_policy() {
    for spec in spec::all_workloads() {
        for run in run_workload(&spec) {
            let m = &run.result.measurement;
            assert!(m.wall_secs > 0.0, "{} {:?}", spec.name, run.policy);
            assert!(m.system_joules() > 0.0);
            assert!(m.counters.instructions > 0);
            // Work conservation: every declared instruction retired.
            let expected: u64 = spec
                .processes
                .iter()
                .map(rda_workloads::ProcessProgram::total_instructions)
                .sum();
            assert_eq!(m.counters.instructions, expected, "{}", spec.name);
        }
    }
}
