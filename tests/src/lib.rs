//! Host crate for the integration tests in `tests/tests/`.
//!
//! The tests span the full stack: instrumented workloads → profiler →
//! progress-period annotations → RDA extension → CFS substrate →
//! machine model → measurements.
