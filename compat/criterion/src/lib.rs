//! Offline drop-in replacement for the subset of the Criterion API this
//! workspace's benches use.
//!
//! The real criterion crate is unavailable in this offline build
//! environment, so the workspace vendors a minimal harness with the
//! same call surface: `criterion_group!` / `criterion_main!`,
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! `sample_size`, and [`Bencher::iter`]. Each benchmark is timed as
//! `sample_size` samples of an adaptively-sized iteration batch and the
//! median per-iteration time is printed — no plots, no statistics
//! files, just numbers on stdout.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Target wall-clock spent measuring each benchmark.
const TARGET_MEASURE: Duration = Duration::from_millis(400);

/// The top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; CLI filtering is not supported.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(&mut self, name: N, mut f: F) -> &mut Self {
        let name = name.as_ref();
        run_one(name, self.default_sample_size, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(&mut self, name: N, mut f: F) -> &mut Self {
        let name = name.as_ref();
        run_one(&format!("{}/{}", self.name, name), self.sample_size, &mut f);
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` invocations of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_batch<F: FnMut(&mut Bencher)>(iters: u64, f: &mut F) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    // Calibrate: grow the batch until one batch costs ~1/samples of the
    // measurement budget, so total wall-clock stays bounded.
    let mut iters: u64 = 1;
    let per_sample = TARGET_MEASURE / samples as u32;
    loop {
        let t = time_batch(iters, f);
        if t >= per_sample || t >= TARGET_MEASURE || iters >= 1 << 20 {
            break;
        }
        iters = if t.is_zero() {
            iters * 16
        } else {
            let scale = per_sample.as_secs_f64() / t.as_secs_f64();
            (iters as f64 * scale.clamp(1.1, 16.0)).ceil() as u64
        };
    }

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| time_batch(iters, f).as_secs_f64() / iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
    println!(
        "{name:<48} time: [{} {} {}]  ({} iters × {} samples)",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi),
        iters,
        samples
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Define a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Define `main()` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("smoke/add", |b| b.iter(|| count = count.wrapping_add(1)));
        assert!(count > 0, "routine never ran");
    }

    #[test]
    fn group_respects_sample_size() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0u64;
        g.bench_function("noop", |b| {
            runs += 1;
            b.iter(|| ())
        });
        g.finish();
        // Calibration runs plus exactly 3 samples.
        assert!(runs >= 4, "expected calibration + 3 samples, got {runs}");
    }

    #[test]
    fn time_formatting_covers_magnitudes() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with('s'));
    }
}
