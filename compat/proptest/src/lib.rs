//! Offline drop-in replacement for the subset of the `proptest` API this
//! workspace uses.
//!
//! The real proptest crate pulls a dozen transitive dependencies; this
//! build environment is fully offline, so the workspace vendors a small
//! deterministic reimplementation instead. Semantics:
//!
//! * Every `#[test]` inside [`proptest!`] runs `Config::cases` times
//!   with values drawn from a [`TestRng`] seeded by the *test name*, so
//!   failures reproduce exactly on every run and every machine.
//! * `prop_assert*` are plain `assert*` — a failing case panics with the
//!   case number in the test RNG state rather than shrinking. The
//!   deterministic seed makes shrinking unnecessary for debugging: rerun
//!   the single test and it fails identically.
//!
//! Supported surface: range strategies over primitive ints and `f64`,
//! tuples up to 6, `Just`, `any::<bool|integers|f64>()`,
//! `prop::collection::vec`, `Strategy::prop_map`/`boxed`, weighted
//! [`prop_oneof!`], and `#![proptest_config(...)]`.

pub mod test_runner {
    /// Per-test configuration (`cases` = iterations per property).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` iterations.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic generator behind every strategy: SplitMix64 seeded
    /// from the test's name, so each property has an independent,
    /// reproducible stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (FNV-1a over the bytes).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value (SplitMix64 step).
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be positive.
        #[inline]
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A value generator. Unlike real proptest there is no shrinking
    /// tree; `generate` draws one value.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase into a [`BoxedStrategy`].
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! uint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    uint_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// Weighted union of strategies, built by [`crate::prop_oneof!`].
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Union over `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total = arms.iter().map(|&(w, _)| w as u64).sum();
            assert!(total > 0, "prop_oneof! needs positive total weight");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights exhausted")
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite doubles spanning a broad magnitude range.
            let mag = rng.unit_f64() * 600.0 - 300.0;
            let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
            sign * mag.exp2() * rng.unit_f64()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// `prop::` namespace mirroring real proptest's module layout.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// `Vec` strategy with length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Generate vectors of `element` values with length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.end - self.len.start) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

pub mod prelude {
    //! Everything a property test needs, mirroring `proptest::prelude`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define deterministic property tests. Each `fn name(pat in strategy, ...)`
/// becomes a `#[test]` that draws `cases` inputs from a name-seeded RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// `prop_assert!` — panics (no shrinking), reproducible via the seed.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!` — panics (no shrinking), reproducible via the seed.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `prop_assert_ne!` — panics (no shrinking), reproducible via the seed.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Weighted (`w => strat`) or uniform union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn same_name_same_stream() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_loops(xs in prop::collection::vec(0u64..100, 1..20), b in any::<bool>()) {
            prop_assert!(xs.len() < 20 && !xs.is_empty());
            prop_assert!(xs.iter().all(|&x| x < 100));
            let _ = b;
        }

        #[test]
        fn oneof_picks_every_arm(picks in prop::collection::vec(
            prop_oneof![2 => Just(1u8), 1 => Just(2u8), 1 => 3u8..5], 200..201)) {
            prop_assert!(picks.iter().all(|&p| (1..5).contains(&p)));
            for arm in 1u8..4 {
                prop_assert!(picks.contains(&arm), "arm {arm} never chosen");
            }
        }
    }
}
