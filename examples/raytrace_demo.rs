//! Raytrace: the paper's best case (1.88× with RDA:Strict).
//!
//! Renders a real image with the mini raytracer (showing the actual
//! computation the workload models), then schedules the Table 2
//! Raytrace workload — 48 processes × 4 threads, 5.1/5.2 MB high-reuse
//! working sets — under all three policies.
//!
//! ```bash
//! cargo run --release -p rda-examples --bin raytrace_demo
//! ```

use rda_sim::experiment::{paper_policies, run_policy};
use rda_workloads::spec;
use rda_workloads::splash::raytrace::{render, RaytraceParams};

fn main() {
    // The actual computation: render a small frame and show it as
    // ASCII (the workload model's per-phase statistics come from
    // tracing this renderer).
    let params = RaytraceParams {
        size: 48,
        spheres: 64,
        seed: 20180813, // ICPP 2018, August 13
    };
    let mean = render(&params);
    println!("rendered {0}×{0} frame, mean intensity {mean:.3}", params.size);
    ascii_preview(&params);

    // The scheduling experiment.
    println!("\nscheduling Raytrace (48 procs × 4 threads, 5.1/5.2 MB high reuse):");
    let spec = spec::raytrace();
    let mut baseline = None;
    for policy in paper_policies() {
        let run = run_policy(&spec, policy);
        let m = run.result.measurement;
        let base = *baseline.get_or_insert(m.wall_secs);
        println!(
            "  {:<22} {:>6.2} s   {:>7.1} J   {:>5.2} GFLOPS   speedup {:>4.2}x   paused {}",
            policy.to_string(),
            m.wall_secs,
            m.system_joules(),
            m.gflops(),
            base / m.wall_secs,
            run.result.rda.paused,
        );
    }
    println!("\n(paper: RDA:Strict reached 1.88x and -47 % energy on this workload)");
}

/// Cheap ASCII dump of the rendered scene (one sample per cell).
fn ascii_preview(params: &RaytraceParams) {
    use rda_workloads::splash::raytrace::make_scene;
    let scene = make_scene(params);
    let shades = [' ', '.', ':', '+', '*', '#', '@'];
    for py in (0..params.size).step_by(2) {
        let mut line = String::new();
        for px in 0..params.size {
            // Re-shoot the central ray of this cell.
            let x = (px as f64 + 0.5) / params.size as f64 * 2.0 - 1.0;
            let y = (py as f64 + 0.5) / params.size as f64 * 2.0 - 1.0;
            let len = (x * x + y * y + 1.5f64 * 1.5).sqrt();
            let dir = [x / len, y / len, 1.5 / len];
            let mut t_best = f64::INFINITY;
            for s in &scene {
                let oc = [-s.c[0], -s.c[1], -s.c[2]];
                let b = oc[0] * dir[0] + oc[1] * dir[1] + oc[2] * dir[2];
                let c = oc[0] * oc[0] + oc[1] * oc[1] + oc[2] * oc[2] - s.r * s.r;
                let disc = b * b - c;
                if disc >= 0.0 {
                    let t = -b - disc.sqrt();
                    if t > 1e-6 && t < t_best {
                        t_best = t;
                    }
                }
            }
            let shade = if t_best.is_finite() {
                let depth = ((4.5 - t_best) / 3.0).clamp(0.0, 1.0);
                shades[1 + (depth * (shades.len() - 2) as f64) as usize]
            } else {
                shades[0]
            };
            line.push(shade);
        }
        println!("{line}");
    }
}
