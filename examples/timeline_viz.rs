//! Timeline visualisation: watch the scheduler work.
//!
//! Runs Water_nsq under the default and the strict policy with periodic
//! sampling and plots core utilisation and LLC pressure over time as
//! ASCII sparklines — making Figure 1's story visible: the default
//! policy keeps all cores busy on a thrashing cache; RDA trades a few
//! busy cores for a cache that fits.
//!
//! ```bash
//! cargo run --release -p rda-examples --bin timeline_viz
//! ```

use rda_core::PolicyKind;
use rda_sim::{SimConfig, SystemSim};
use rda_workloads::spec;

const BARS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

fn sparkline(values: &[f64], max: f64, width: usize) -> String {
    if values.is_empty() {
        return String::new();
    }
    // Downsample to `width` buckets by averaging.
    let mut out = String::with_capacity(width);
    for b in 0..width {
        let lo = b * values.len() / width;
        let hi = ((b + 1) * values.len() / width).max(lo + 1);
        let mean = values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
        let idx = ((mean / max) * (BARS.len() - 1) as f64).round() as usize;
        out.push(BARS[idx.min(BARS.len() - 1)]);
    }
    out
}

fn main() {
    let spec = spec::water_nsq();
    let llc = rda_machine::MachineConfig::xeon_e5_2420().llc_bytes as f64;
    println!("Water_nsq (12 procs × 2 threads, 3.6 MB high-reuse periods)\n");
    for policy in [PolicyKind::DefaultOnly, PolicyKind::Strict] {
        let cfg = SimConfig::paper_default(policy).with_sampling_ms(5.0);
        let r = SystemSim::new(cfg, &spec).run().expect("run");
        let busy: Vec<f64> = r.timeline.iter().map(|s| s.busy_cores as f64).collect();
        let pressure: Vec<f64> = r
            .timeline
            .iter()
            .map(|s| s.running_pressure_bytes as f64)
            .collect();
        let wait: Vec<f64> = r.timeline.iter().map(|s| s.waitlisted as f64).collect();
        let width = 72;
        println!("{policy}  ({:.2} s, {:.0} J, {:.2} GFLOPS)",
            r.measurement.wall_secs,
            r.measurement.system_joules(),
            r.measurement.gflops());
        println!("  busy cores (0–12)   {}", sparkline(&busy, 12.0, width));
        println!("  LLC pressure (×cap) {}", sparkline(&pressure, 2.0 * llc, width));
        println!("  waitlist depth      {}", sparkline(&wait, 12.0, width));
        let over = pressure.iter().filter(|&&p| p > llc).count();
        println!(
            "  samples over LLC capacity: {}/{}  |  mean utilization {:.0} %\n",
            over,
            pressure.len(),
            r.mean_utilization(12) * 100.0
        );
    }
    println!("(the default policy runs more cores on an oversubscribed cache;");
    println!(" strict keeps the running working sets inside the LLC at the cost");
    println!(" of a shorter runqueue — and finishes sooner anyway)");
}
