//! Quickstart: the progress-period API and the scheduling predicate in
//! five minutes.
//!
//! Mirrors Figure 4 of the paper: a process announces an LLC demand
//! with `pp_begin`, the scheduling predicate decides run-or-pause, and
//! `pp_end` releases the demand, resuming waitlisted processes.
//!
//! ```bash
//! cargo run -p rda-examples --bin quickstart
//! ```

use rda_core::{mb, BeginOutcome, PolicyKind, PpDemand, RdaConfig, RdaExtension, Resource, SiteId};
use rda_machine::{MachineConfig, ReuseLevel};
use rda_sched::ProcessId;
use rda_simcore::SimTime;

fn main() {
    let machine = MachineConfig::xeon_e5_2420();
    println!("machine: {} cores, {} KB shared LLC\n", machine.cores, machine.llc_bytes / 1024);

    // The RDA extension with the paper's strict policy.
    let mut rda = RdaExtension::new(RdaConfig::for_machine(&machine, PolicyKind::Strict));

    // --- Figure 4, lines 6–8: one DGEMM-sized progress period ---
    // pp_id = pp_begin(RESOURCE_LLC, MB(6.3), REUSE_HIGH);
    let demand = PpDemand::llc(mb(6.3), ReuseLevel::High);
    let t = |c| SimTime::from_cycles(c);

    let dgemm_pp = match rda.pp_begin(ProcessId(0), SiteId(0), demand, t(0)).unwrap() {
        BeginOutcome::Run { pp, .. } => {
            println!("P0: pp_begin(LLC, MB(6.3), HIGH) → RUN   ({pp})");
            pp
        }
        other => panic!("an idle cache must admit: {other:?}"),
    };
    println!("    LLC load is now {:.1} MB", rda.usage(Resource::Llc) as f64 / 1e6 * 0.95367);

    // A second process wants 7 MB — still fits (6.3 + 7 < 15).
    let p1 = match rda.pp_begin(ProcessId(1), SiteId(0), PpDemand::llc(mb(7.0), ReuseLevel::High), t(10)).unwrap() {
        BeginOutcome::Run { pp, .. } => {
            println!("P1: pp_begin(LLC, MB(7.0), HIGH) → RUN   ({pp})");
            pp
        }
        other => panic!("{other:?}"),
    };

    // A third wants 5 MB — 6.3 + 7 + 5 > 15.36: the predicate pauses it.
    match rda.pp_begin(ProcessId(2), SiteId(0), PpDemand::llc(mb(5.0), ReuseLevel::High), t(20)).unwrap() {
        BeginOutcome::Pause { pp, .. } => {
            println!("P2: pp_begin(LLC, MB(5.0), HIGH) → PAUSE ({pp}) — waitlisted");
        }
        other => panic!("expected a pause: {other:?}"),
    }

    // DGEMM finishes: pp_end(pp_id). Capacity frees; P2 resumes.
    let out = rda.pp_end(dgemm_pp, t(1_000_000)).unwrap();
    for (pp, process) in &out.resumed {
        println!("P0: pp_end → resumed {process} ({pp}) from the waitlist");
    }
    // A buggy second pp_end is rejected with a typed error instead of
    // corrupting the load table (the PR 2 fault model).
    let err = rda.pp_end(dgemm_pp, t(1_000_010)).unwrap_err();
    println!("P0: pp_end again       → ERROR  ({err})");
    let _ = rda.pp_end(p1, t(2_000_000)).unwrap();
    assert!(rda.check_invariants().is_ok());

    // --- The same mechanics, end to end, on the simulated machine ---
    println!("\nfull-system comparison (6 procs × 4 threads, 6 MB high-reuse each):");
    use rda_sim::{SimConfig, SystemSim};
    use rda_workloads::{Phase, ProcessProgram, WorkloadSpec};
    let spec = WorkloadSpec {
        name: "quickstart".into(),
        processes: (0..6)
            .map(|_| ProcessProgram {
                threads: 4,
                phases: vec![Phase::tracked("hot", 30_000_000, mb(6.0), ReuseLevel::High, SiteId(0))],
            })
            .collect(),
    };
    for policy in [PolicyKind::DefaultOnly, PolicyKind::Strict, PolicyKind::compromise_default()] {
        let r = SystemSim::new(SimConfig::paper_default(policy), &spec)
            .run()
            .expect("run");
        println!(
            "  {:<22} {:>6.1} ms   {:>6.1} J   {:>5.2} GFLOPS",
            policy.to_string(),
            r.measurement.wall_secs * 1e3,
            r.measurement.system_joules(),
            r.measurement.gflops()
        );
    }
}
