//! The §2.4 profiling pipeline, end to end, on the real dgemm kernel:
//!
//! 1. run the instrumented dgemm and record its exact memory trace;
//! 2. decompose the trace into fixed-size sampling windows (footprint,
//!    WSS, reuse ratio per window);
//! 3. detect progress periods as runs of similar windows;
//! 4. map each period's dominant loop to the outermost enclosing loop
//!    (the Dyninst ParseAPI step);
//! 5. emit the `pp_begin`-ready annotation and verify the scheduler
//!    admits it.
//!
//! ```bash
//! cargo run --release -p rda-examples --bin profile_dgemm
//! ```

use rda_core::{BeginOutcome, PolicyKind, RdaConfig, RdaExtension};
use rda_machine::MachineConfig;
use rda_profiler::annotate::annotate;
use rda_profiler::detect::{detect_periods, DetectorConfig};
use rda_profiler::loopmap::dgemm_loop_nest;
use rda_profiler::window::{windowize, WindowConfig};
use rda_sched::ProcessId;
use rda_simcore::SimTime;
use rda_workloads::blas::level3::dgemm_traced;
use rda_workloads::trace::TraceRecorder;

fn main() {
    // 1. Trace a 48×48 dgemm (full fidelity, every access recorded).
    let n = 48;
    let rec = TraceRecorder::new();
    let checksum = dgemm_traced(n, &rec);
    let trace = rec.take();
    println!(
        "traced dgemm n={n}: {} memory ops, checksum {checksum:.3}",
        trace.memory_ops()
    );

    // 2. Window statistics.
    let wcfg = WindowConfig {
        window_ops: 4_000,
        wss_min_accesses: 2,
        line_bytes: 64,
    };
    let windows = windowize(&trace, &wcfg);
    println!("{} windows of {} memory ops", windows.len(), wcfg.window_ops);
    for w in windows.iter().take(3) {
        println!(
            "  window {:>3}: footprint {:>6} B  WSS {:>6} B  reuse {:>5.1}  loop {:?}",
            w.index,
            w.footprint_bytes,
            w.wss_bytes,
            w.reuse_ratio,
            w.dominant_loop()
        );
    }

    // 3. Progress-period detection.
    let periods = detect_periods(&windows, &DetectorConfig::default());
    println!("detected {} progress period(s):", periods.len());
    for p in &periods {
        println!(
            "  windows {:>3}..{:<3}  WSS {:>7} B  reuse {:>6.1}  dominant loop {:?}",
            p.start_window, p.end_window, p.mean_wss_bytes, p.mean_reuse_ratio, p.dominant_loop
        );
    }

    // 4 + 5. Anchor at the outermost loop and admit on the scheduler.
    let nest = dgemm_loop_nest();
    let annotations = annotate(&periods, &nest);
    let mut rda = RdaExtension::new(RdaConfig::for_machine(
        &MachineConfig::xeon_e5_2420(),
        PolicyKind::Strict,
    ));
    for a in &annotations {
        println!(
            "annotation: pp_begin(LLC, {} B, {}) at {} (outermost loop of the nest)",
            a.ws_bytes,
            a.demand().reuse,
            a.site
        );
        match rda.pp_begin(ProcessId(0), a.site, a.demand(), SimTime::ZERO) {
            Ok(BeginOutcome::Run { pp, .. }) => {
                println!("  scheduler verdict: RUN ({pp})");
                rda.pp_end(pp, SimTime::from_cycles(1000))
                    .expect("ending a live admitted period");
            }
            other => println!("  scheduler verdict: {other:?}"),
        }
    }
    assert!(
        !annotations.is_empty(),
        "the dgemm kernel must yield at least one annotated period"
    );
}
