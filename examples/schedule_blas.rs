//! Schedule the BLAS workloads of Table 2 under all three policies.
//!
//! The level-1/2/3 groups span the paper's reuse spectrum: streaming
//! vector kernels (RDA should stay out of the way) up to blocked
//! matrix-matrix kernels (RDA should prevent LLC thrash).
//!
//! ```bash
//! cargo run --release -p rda-examples --bin schedule_blas
//! ```

use rda_metrics::TextTable;
use rda_sim::experiment::{paper_policies, run_policy};
use rda_workloads::spec;

fn main() {
    let mut table = TextTable::new(vec![
        "workload".into(),
        "policy".into(),
        "time (s)".into(),
        "energy (J)".into(),
        "DRAM (J)".into(),
        "GFLOPS".into(),
        "GFLOPS/W".into(),
        "paused".into(),
    ]);
    for spec in [spec::blas1(), spec::blas2(), spec::blas3()] {
        eprintln!("scheduling {} ({} processes)…", spec.name, spec.num_processes());
        for policy in paper_policies() {
            let run = run_policy(&spec, policy);
            let m = &run.result.measurement;
            table.add_row(vec![
                spec.name.clone(),
                policy.to_string(),
                format!("{:.3}", m.wall_secs),
                format!("{:.1}", m.system_joules()),
                format!("{:.2}", m.dram_joules()),
                format!("{:.2}", m.gflops()),
                format!("{:.4}", m.gflops_per_watt()),
                run.result.rda.paused.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!("reading guide: the default policy wins nothing on BLAS-1/2 (low/medium");
    println!("reuse, the LLC is not the bottleneck), while BLAS-3's working sets");
    println!("(1.6–3.2 MB × 96 processes) thrash the shared cache unless gated.");
}
