//! Policy advisor: the paper's conclusion, automated.
//!
//! §6: *"the traditional scheduling policy would be used for memory
//! bound applications to maximize concurrency; our resource demand
//! aware scheduling policies would be used for programs that have at
//! least a moderate level of data reuse."* This example inspects a
//! workload's declared demands, predicts which policy should win using
//! the machine model (no simulation), then validates the prediction by
//! simulating all three policies.
//!
//! ```bash
//! cargo run --release -p rda-examples --bin policy_advisor
//! ```

use rda_core::PolicyKind;
use rda_machine::{MachineConfig, PerfModel, ReuseLevel};
use rda_sim::experiment::{paper_policies, run_policy};
use rda_workloads::spec::all_workloads;
use rda_workloads::WorkloadSpec;

/// A model-only recommendation (no simulation): gate when the
/// workload's co-run pressure would thrash the LLC *and* its reuse is
/// at least medium.
fn recommend(spec: &WorkloadSpec, machine: &MachineConfig) -> PolicyKind {
    let model = PerfModel::new(machine.clone());
    // Estimate default-policy pressure: one process per core competes.
    let mut tracked = Vec::new();
    for proc in &spec.processes {
        for ph in &proc.phases {
            if let Some(pp) = &ph.pp {
                tracked.push((pp.demand.amount, pp.demand.reuse));
            }
        }
    }
    if tracked.is_empty() {
        return PolicyKind::DefaultOnly;
    }
    let mean_ws: u64 =
        tracked.iter().map(|&(w, _)| w).sum::<u64>() / tracked.len() as u64;
    let max_reuse = tracked.iter().map(|&(_, r)| r).max().unwrap();
    let distinct_corunners = spec.num_processes().min(machine.cores);
    let pressure = mean_ws * distinct_corunners as u64;

    if max_reuse == ReuseLevel::Low || pressure <= machine.llc_bytes {
        return PolicyKind::DefaultOnly;
    }
    // Gate. Strict when admitted processes still cover the cores
    // (threads ≥ cores); otherwise trade some cache for concurrency.
    let admitted_procs = (machine.llc_bytes / mean_ws.max(1)).max(1) as usize;
    let threads_per_proc = spec.processes[0].threads;
    let model_says_strict = admitted_procs * threads_per_proc >= machine.cores / 2;
    let _ = &model; // the share/rate API is available for finer advice
    if model_says_strict {
        PolicyKind::Strict
    } else {
        PolicyKind::compromise_default()
    }
}

fn main() {
    let machine = MachineConfig::xeon_e5_2420();
    println!("{:<10} {:>22}   {:>22}   verdict", "workload", "recommended", "best simulated");
    println!("{}", "-".repeat(78));
    let mut hits = 0;
    let mut total = 0;
    for spec in all_workloads() {
        let rec = recommend(&spec, &machine);
        // Validate by simulation: best = highest GFLOPS/W.
        let mut best: Option<(PolicyKind, f64)> = None;
        let mut default_eff = 0.0;
        for policy in paper_policies() {
            let run = run_policy(&spec, policy);
            let eff = run.result.measurement.gflops_per_watt();
            if policy == PolicyKind::DefaultOnly {
                default_eff = eff;
            }
            if best.is_none_or(|(_, b)| eff > b) {
                best = Some((policy, eff));
            }
        }
        let (best_policy, best_eff) = best.unwrap();
        // "Default" is the right answer whenever gating gains < 5 %.
        let effective_best = if best_eff < default_eff * 1.05 {
            PolicyKind::DefaultOnly
        } else {
            best_policy
        };
        let hit = std::mem::discriminant(&rec) == std::mem::discriminant(&effective_best);
        hits += hit as u32;
        total += 1;
        println!(
            "{:<10} {:>22}   {:>22}   {}",
            spec.name,
            rec.to_string(),
            effective_best.to_string(),
            if hit { "✓" } else { "✗" }
        );
    }
    println!("\nadvisor agreement with simulation: {hits}/{total}");
}
